package mrf

import (
	"math"
	"math/rand"
	"testing"

	"rsu/internal/core"
	"rsu/internal/img"
	"rsu/internal/rng"
)

// randomProblem builds a randomized MRF instance. Odd widths are the
// interesting case for the fused kernels: with W odd the checkerboard color
// classes' linear indices run contiguously across row boundaries, which the
// segment-extension logic must not mistake for one row.
func randomProblem(r *rand.Rand) *Problem {
	w := 3 + r.Intn(9)
	h := 2 + r.Intn(7)
	labels := 2 + r.Intn(6)
	singles := make([]float64, w*h*labels)
	for i := range singles {
		singles[i] = r.Float64() * 12
	}
	p := &Problem{
		W: w, H: h, Labels: labels,
		Singleton:  func(x, y, l int) float64 { return singles[(y*w+x)*labels+l] },
		PairWeight: 0.2 + r.Float64()*2,
		Dist:       DistanceKind(r.Intn(3)),
	}
	if r.Intn(3) == 0 {
		p.TruncateDist = 0.5 + r.Float64()*3
	}
	if r.Intn(4) == 0 {
		// Asymmetric distance: pins the orientation-exact Pair indexing in
		// FlipDelta and the row gathers (no dist(a,b) == dist(b,a) crutch).
		p.PairDist = func(a, b int) float64 { return float64(2*a+b) * 0.25 }
	}
	return p
}

// randomLabeling fills a labeling uniformly at random.
func randomLabeling(r *rand.Rand, w, h, labels int) *img.Labels {
	lab := img.NewLabels(w, h)
	for i := range lab.L {
		lab.L[i] = r.Intn(labels)
	}
	return lab
}

// TestLabelEnergiesSegMatchesPerPixel pins the fused gathers bit-for-bit
// against per-pixel LabelEnergies: full rows (step 1, the serial sweep) and
// both checkerboard parities (step 2, the parallel sweep).
func TestLabelEnergiesSegMatchesPerPixel(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 60; trial++ {
		p := randomProblem(r)
		tab := p.BuildTables()
		lab := randomLabeling(r, p.W, p.H, p.Labels)
		L := p.Labels
		want := make([]float64, L)
		row := make([]float64, p.W*L)
		for y := 0; y < p.H; y++ {
			tab.LabelEnergiesRow(row, lab, y)
			for x := 0; x < p.W; x++ {
				tab.LabelEnergies(want, lab, x, y)
				for l := 0; l < L; l++ {
					if got := row[x*L+l]; got != want[l] {
						t.Fatalf("trial %d: row gather (%d,%d) label %d: %v != %v", trial, x, y, l, got, want[l])
					}
				}
			}
			for x0 := 0; x0 < 2 && x0 < p.W; x0++ {
				n := (p.W - x0 + 1) / 2
				seg := make([]float64, n*L)
				tab.LabelEnergiesSeg(seg, lab, y, x0, 2, n)
				for i := 0; i < n; i++ {
					x := x0 + 2*i
					tab.LabelEnergies(want, lab, x, y)
					for l := 0; l < L; l++ {
						if got := seg[i*L+l]; got != want[l] {
							t.Fatalf("trial %d: seg gather (%d,%d) label %d: %v != %v", trial, x, y, l, got, want[l])
						}
					}
				}
			}
		}
	}
}

// TestFlipDeltaMatchesTotalEnergy is the incremental-energy invariant at the
// single-flip level: FlipDelta must equal the TotalEnergy difference of the
// relabeling, for every distance kind including asymmetric PairDist.
func TestFlipDeltaMatchesTotalEnergy(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	for trial := 0; trial < 80; trial++ {
		p := randomProblem(r)
		tab := p.BuildTables()
		lab := randomLabeling(r, p.W, p.H, p.Labels)
		for flip := 0; flip < 20; flip++ {
			x, y := r.Intn(p.W), r.Intn(p.H)
			from := lab.At(x, y)
			to := r.Intn(p.Labels)
			before := tab.TotalEnergy(lab)
			delta := tab.FlipDelta(lab, x, y, from, to)
			lab.Set(x, y, to)
			after := tab.TotalEnergy(lab)
			want := after - before
			scale := math.Abs(before) + math.Abs(after) + 1
			if math.Abs(delta-want) > 1e-9*scale {
				t.Fatalf("trial %d: flip (%d,%d) %d->%d: delta %v, recompute %v", trial, x, y, from, to, delta, want)
			}
		}
	}
}

// TestIncrementalEnergyMatchesRecompute is the randomized acceptance
// property: over full solves (serial and parallel), the incrementally
// tracked SolveStats.Energy must match a TotalEnergy recomputation of the
// hook's labeling to 1e-9 relative error on every sweep.
func TestIncrementalEnergyMatchesRecompute(t *testing.T) {
	r := rand.New(rand.NewSource(63))
	for trial := 0; trial < 12; trial++ {
		p := randomProblem(r)
		tab := p.BuildTables()
		init := randomLabeling(r, p.W, p.H, p.Labels)
		sched := Schedule{T0: 1 + r.Float64()*16, Alpha: 0.85 + r.Float64()*0.15, Iterations: 8}
		for _, workers := range []int{1, 3} {
			seed := uint64(1000*trial + workers)
			factory := func(w int) core.LabelSampler {
				return core.NewSoftwareSampler(rng.NewXoshiro256(core.StreamSeed(seed, w)))
			}
			sweeps := 0
			_, err := SolveAuto(p, factory, sched, SolveOptions{
				Init: init, Workers: workers, Tables: tab,
				OnSweep: func(iter int, lab *img.Labels, st SolveStats) {
					sweeps++
					want := tab.TotalEnergy(lab)
					if math.Abs(st.Energy-want) > 1e-9*math.Abs(want) {
						t.Errorf("trial %d workers %d sweep %d: incremental Energy %v, recompute %v", trial, workers, iter, st.Energy, want)
					}
				},
			})
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			if sweeps != sched.Iterations {
				t.Fatalf("trial %d workers %d: %d sweeps observed", trial, workers, sweeps)
			}
		}
	}
}

// referenceSolve is the pre-fusion solver loop (per-pixel gather + Sample,
// per-sweep closed-form temperature), kept as the behavioral oracle for the
// fused engine: for identical seeds the fused solvers must reproduce it
// label for label.
func referenceSolve(t *testing.T, p *Problem, samplers []core.LabelSampler, sched Schedule, init *img.Labels, workers int) *img.Labels {
	t.Helper()
	tab := p.BuildTables()
	lab := init.Clone()
	energies := make([]float64, p.Labels)
	cells := checkerCells(p.W, p.H)
	var shards [2][][]int32
	for color := 0; color < 2; color++ {
		shards[color] = shardCells(cells[color], workers)
	}
	for k := 0; k < sched.Iterations; k++ {
		T := sched.Temperature(k)
		for _, s := range samplers {
			core.MustSetTemperature(s, T)
		}
		if workers == 1 {
			for y := 0; y < p.H; y++ {
				for x := 0; x < p.W; x++ {
					tab.LabelEnergies(energies, lab, x, y)
					lab.Set(x, y, core.MustSample(samplers[0], energies, lab.At(x, y)))
				}
			}
			continue
		}
		// Workers write disjoint same-color cells and read only other-color
		// neighbors, so emulating them sequentially is exact.
		for color := 0; color < 2; color++ {
			for w := 0; w < workers; w++ {
				for _, c := range shards[color][w] {
					x, y := int(c)%p.W, int(c)/p.W
					tab.LabelEnergies(energies, lab, x, y)
					lab.Set(x, y, core.MustSample(samplers[w], energies, lab.At(x, y)))
				}
			}
		}
	}
	return lab
}

// TestFusedSolversMatchReference races the fused serial and parallel solvers
// against the pre-fusion reference loop on random problems with identically
// seeded RSU-G units. Any divergence — a stale row-block slot, a mis-split
// segment, a temperature-iterator draw shift — shows up as a label mismatch.
func TestFusedSolversMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(64))
	for trial := 0; trial < 10; trial++ {
		p := randomProblem(r)
		init := randomLabeling(r, p.W, p.H, p.Labels)
		sched := Schedule{T0: 8, Alpha: 0.9, Iterations: 20}
		for _, workers := range []int{1, 2, 3} {
			seed := uint64(500*trial + workers)
			mk := func() []core.LabelSampler {
				s := make([]core.LabelSampler, workers)
				for w := range s {
					s[w] = core.MustUnit(core.NewRSUG(), rng.NewXoshiro256(core.StreamSeed(seed, w)), true)
				}
				return s
			}
			want := referenceSolve(t, p, mk(), sched, init, workers)
			var got *img.Labels
			var err error
			if workers == 1 {
				got, err = Solve(p, mk()[0], sched, SolveOptions{Init: init})
			} else {
				got, err = SolveParallel(p, mk(), sched, SolveOptions{Init: init})
			}
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			for i := range got.L {
				if got.L[i] != want.L[i] {
					t.Fatalf("trial %d workers %d: label[%d] = %d, reference %d (grid %dx%d, %d labels)",
						trial, workers, i, got.L[i], want.L[i], p.W, p.H, p.Labels)
				}
			}
		}
	}
}

// TestTemperatureIterMatchesClosedForm pins the running-product iterator to
// the public closed form within 1-ulp-per-step accumulation error, exact at
// the first two sweeps and for power-of-two Alpha.
func TestTemperatureIterMatchesClosedForm(t *testing.T) {
	scheds := []Schedule{
		{T0: 32, Alpha: 0.9, Iterations: 500},
		{T0: 4, Alpha: 0.5, Iterations: 200},
		{T0: 10, Alpha: 0.99, Iterations: 800},
		{T0: 7, Alpha: 1, Iterations: 50},
		{T0: 2, Alpha: 0.7, Iterations: 100, TFloor: 1e-2},
	}
	for si, s := range scheds {
		it := s.iter()
		for k := 0; k < s.Iterations; k++ {
			got := it.next()
			want := s.Temperature(k)
			// One rounding per multiplication: allow k half-ulps of drift.
			tol := float64(k+1) * want * 0x1p-52
			if math.Abs(got-want) > tol {
				t.Fatalf("schedule %d sweep %d: iter %v, closed form %v (tol %g)", si, k, got, want, tol)
			}
			if (k < 2 || s.Alpha == 1 || s.Alpha == 0.5) && got != want {
				t.Fatalf("schedule %d sweep %d: iter %v != closed form %v, want exact", si, k, got, want)
			}
		}
	}
}

// TestSerialSweepSteadyStateZeroAlloc is the fused-sweep allocation
// contract: once the sweeper and the sampler scratch are warm, a full sweep
// (including incremental energy tracking) performs zero allocations.
func TestSerialSweepSteadyStateZeroAlloc(t *testing.T) {
	p := twoRegionProblem(24, 16)
	tab := p.BuildTables()
	lab := img.NewLabels(p.W, p.H)
	u := core.MustUnit(core.NewRSUG(), rng.NewXoshiro256(9), true)
	core.MustSetTemperature(u, 4)
	sw := newSerialSweeper(p, tab, lab, u, true)
	if _, err := sw.sweep(0); err != nil {
		t.Fatalf("warm-up sweep: %v", err)
	}
	k := 1
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := sw.sweep(k); err != nil {
			t.Fatalf("sweep %d: %v", k, err)
		}
		k++
	})
	if allocs != 0 {
		t.Fatalf("steady-state fused serial sweep allocated %.1f objects/run, want 0", allocs)
	}
}

// TestSolveParallelExecutorInvariance pins the executors/workers split:
// logical workers (samplers, shards, RNG streams) fix the output, executors
// only schedule them, so every executor count — including the clamped and
// auto-resolved ones — must produce the bit-identical labeling. Running the
// full executor range also drives the cross-goroutine phase barrier under
// the race detector regardless of the host's core count.
func TestSolveParallelExecutorInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(4096))
	for trial := 0; trial < 4; trial++ {
		p := randomProblem(r)
		init := randomLabeling(r, p.W, p.H, p.Labels)
		sched := Schedule{T0: 8, Alpha: 0.9, Iterations: 12}
		const workers = 4
		mk := func() []core.LabelSampler {
			s := make([]core.LabelSampler, workers)
			for w := range s {
				s[w] = core.MustUnit(core.NewRSUG(), rng.NewXoshiro256(core.StreamSeed(9000+uint64(trial), w)), true)
			}
			return s
		}
		var want *img.Labels
		for _, executors := range []int{1, 2, 3, 4, 7, 0} {
			got, err := SolveParallel(p, mk(), sched, SolveOptions{Init: init, Executors: executors})
			if err != nil {
				t.Fatalf("trial %d executors %d: %v", trial, executors, err)
			}
			if want == nil {
				want = got
				continue
			}
			for i := range got.L {
				if got.L[i] != want.L[i] {
					t.Fatalf("trial %d executors %d: label[%d] = %d, want %d",
						trial, executors, i, got.L[i], want.L[i])
				}
			}
		}
	}
}
