package mrf

import (
	"errors"
	"fmt"
	"math"

	"rsu/internal/core"
	"rsu/internal/img"
)

// StatefulCollector is a Collector whose accumulated observations can be
// captured into and restored from an opaque blob, making it resumable. The
// uncertainty-quantification accumulator (internal/uq) implements it. A
// checkpointing run whose Collector does not implement this interface fails
// at capture time: silently dropping collector state would break the
// bit-exact resume guarantee for the run's UQ outputs.
type StatefulCollector interface {
	Collector
	CaptureState() ([]byte, error)
	RestoreState([]byte) error
}

// SolverState is the complete between-sweeps state of a solve — everything a
// bit-exact resume needs. It is deliberately a plain data value: the
// checkpoint container (internal/checkpoint) owns serialization, versioning
// and integrity checking.
//
// The bit-exactness argument, component by component (DESIGN.md §14):
//
//   - Grid is the labeling after sweep NextSweep-1; sweeps only read and
//     write the grid.
//   - Samplers holds each worker's RNG words and counters. All conversion,
//     survival and guide tables are deterministic functions of (config,
//     temperature) rebuilt identically on resume; the solver re-issues
//     SetTemperature at the top of every sweep.
//   - NextT is the running-product temperature for sweep NextSweep. The
//     iterator is a pure fold (t *= alpha, pinned at the floor), so seeding
//     it with the captured product continues the exact float sequence.
//   - Energy is the incremental accumulator (initial TotalEnergy plus every
//     accepted FlipDelta in worker order). Recomputing TotalEnergy on the
//     restored grid would agree only to rounding; restoring the accumulator
//     keeps run logs byte-identical.
//   - Faults and Collector are the opaque states of the per-worker fault
//     models and the attached collector, captured through their own
//     CaptureState methods.
type SolverState struct {
	// W, H, Labels pin the problem shape the snapshot belongs to.
	W, H, Labels int
	// Workers is the logical worker count (1 for the serial solver). The
	// executor count is NOT part of solver state: any executor count replays
	// the same logical workers bit-identically.
	Workers int
	// NextSweep is the index of the first sweep that has not run yet; it
	// equals Schedule.Iterations when the run finished.
	NextSweep int
	// NextT is the running-product temperature for sweep NextSweep.
	NextT float64
	// Grid is the labeling after sweep NextSweep-1, in row-major order.
	Grid []int
	// Energy is the incrementally tracked total MRF energy after sweep
	// NextSweep-1; valid only when EnergyTracked.
	Energy float64
	// EnergyTracked records whether the captured run maintained the
	// incremental energy (OnSweep was set).
	EnergyTracked bool
	// ShardRows, ShardCols record the tile geometry of a sharded run; both
	// are zero for serial and checkerboard-parallel runs. When set, Workers
	// equals ShardRows*ShardCols (one sampler per tile) and Halos carries the
	// per-tile halo buffers.
	ShardRows, ShardCols int
	// Halos holds, per tile in tile-index order, the labels of every
	// extended-rect cell outside the tile's owned rect (edge strips and
	// corners, extended-rect row-major — shard.TileGrid.HaloSnapshot's
	// order). The halos after sweep NextSweep-1's final exchange are part of
	// solver state: sweep NextSweep's first color phase reads them before any
	// exchange runs. nil for unsharded runs.
	Halos [][]int
	// Samplers holds one state per logical worker, in worker order.
	Samplers []core.SamplerState
	// Faults holds one opaque fault-model state per logical worker when the
	// run had fault injection configured; nil otherwise.
	Faults [][]byte
	// Collector is the attached collector's opaque state; nil when the run
	// had no collector.
	Collector []byte
}

// captureState snapshots the complete solver state between sweeps.
// nextSweep/nextT name the first un-run sweep and its temperature; energy is
// the incremental accumulator (meaningful when track).
func captureState(p *Problem, lab *img.Labels, samplers []core.LabelSampler, opts SolveOptions,
	nextSweep int, nextT float64, energy float64, track bool) (*SolverState, error) {
	st := &SolverState{
		W: p.W, H: p.H, Labels: p.Labels,
		Workers:       len(samplers),
		NextSweep:     nextSweep,
		NextT:         nextT,
		Grid:          append([]int(nil), lab.L...),
		Energy:        energy,
		EnergyTracked: track,
		Samplers:      make([]core.SamplerState, len(samplers)),
	}
	if !track {
		st.Energy = 0
	}
	for i, s := range samplers {
		c, ok := s.(core.Checkpointable)
		if !ok {
			return nil, fmt.Errorf("mrf: sampler %d (%T) does not support checkpointing", i, s)
		}
		ss, err := c.CaptureState()
		if err != nil {
			return nil, fmt.Errorf("mrf: sampler %d: %w", i, err)
		}
		st.Samplers[i] = ss
	}
	if opts.Faults != nil {
		fs, err := opts.Faults.CaptureStates(len(samplers))
		if err != nil {
			return nil, err
		}
		st.Faults = fs
	}
	if opts.Collector != nil {
		sc, ok := opts.Collector.(StatefulCollector)
		if !ok {
			return nil, fmt.Errorf("mrf: collector %T does not support checkpointing (implement StatefulCollector)", opts.Collector)
		}
		cb, err := sc.CaptureState()
		if err != nil {
			return nil, fmt.Errorf("mrf: collector: %w", err)
		}
		st.Collector = cb
	}
	return st, nil
}

// applyResume restores every stateful component from the snapshot into the
// already-constructed run (samplers built, faults attached, collector
// wired). Shape checks that depend only on the problem live in prepare; the
// checks here are the run-configuration ones — worker count, fault and
// collector presence must match the capturing run exactly, because a
// mismatch silently changes the draw sequence.
func applyResume(st *SolverState, sched Schedule, samplers []core.LabelSampler, opts SolveOptions) error {
	if st.Workers != len(samplers) || len(st.Samplers) != len(samplers) {
		return fmt.Errorf("mrf: snapshot captured %d workers (%d sampler states), resuming with %d",
			st.Workers, len(st.Samplers), len(samplers))
	}
	if st.NextSweep < 0 || st.NextSweep > sched.Iterations {
		return fmt.Errorf("mrf: snapshot resumes at sweep %d, schedule has %d iterations", st.NextSweep, sched.Iterations)
	}
	if !(st.NextT > 0) || math.IsInf(st.NextT, 1) {
		return fmt.Errorf("mrf: snapshot temperature %v must be positive and finite", st.NextT)
	}
	for i, s := range samplers {
		c, ok := s.(core.Checkpointable)
		if !ok {
			return fmt.Errorf("mrf: sampler %d (%T) does not support resume", i, s)
		}
		if err := c.RestoreState(st.Samplers[i]); err != nil {
			return fmt.Errorf("mrf: sampler %d: %w", i, err)
		}
	}
	switch {
	case opts.Faults != nil && st.Faults == nil:
		return fmt.Errorf("mrf: fault injection is configured but the snapshot carries no fault state")
	case opts.Faults == nil && st.Faults != nil:
		return fmt.Errorf("mrf: snapshot carries fault state but no fault injection is configured")
	case st.Faults != nil:
		if len(st.Faults) != len(samplers) {
			return fmt.Errorf("mrf: snapshot has %d fault states for %d workers", len(st.Faults), len(samplers))
		}
		if err := opts.Faults.RestoreStates(st.Faults); err != nil {
			return err
		}
	}
	switch {
	case opts.Collector != nil && st.Collector == nil:
		return fmt.Errorf("mrf: a collector is attached but the snapshot carries no collector state")
	case opts.Collector == nil && st.Collector != nil:
		return fmt.Errorf("mrf: snapshot carries collector state but no collector is attached")
	case st.Collector != nil:
		sc, ok := opts.Collector.(StatefulCollector)
		if !ok {
			return fmt.Errorf("mrf: collector %T cannot restore snapshot state (implement StatefulCollector)", opts.Collector)
		}
		if err := sc.RestoreState(st.Collector); err != nil {
			return fmt.Errorf("mrf: collector: %w", err)
		}
	}
	return nil
}

// checkResumeShards rejects a snapshot whose shard geometry differs from the
// resuming run's. The worker-count check in applyResume cannot catch every
// mismatch on its own (a 2×2-sharded snapshot and a 4-worker parallel run
// both say Workers = 4, yet their draw sequences differ), so each solver path
// states its geometry explicitly: (0, 0) for serial/parallel, the tile
// lattice for the sharded solver.
func checkResumeShards(st *SolverState, rows, cols int) error {
	if st.ShardRows == rows && st.ShardCols == cols {
		return nil
	}
	if st.ShardRows == 0 && st.ShardCols == 0 {
		return fmt.Errorf("mrf: snapshot captured an unsharded run, resuming with %dx%d tiles", rows, cols)
	}
	if rows == 0 && cols == 0 {
		return fmt.Errorf("mrf: snapshot captured a %dx%d-sharded run — resume it with SolveOptions.Shards", st.ShardRows, st.ShardCols)
	}
	return fmt.Errorf("mrf: snapshot captured %dx%d tiles, resuming with %dx%d", st.ShardRows, st.ShardCols, rows, cols)
}

// resumeIter rebuilds the running-product temperature iterator at the
// snapshot's position: seeding the product with the captured NextT continues
// the exact float sequence an uninterrupted run would have produced (next()
// is a pure fold over t).
func resumeIter(st *SolverState, sched Schedule) tempIter {
	return tempIter{t: st.NextT, alpha: sched.Alpha, floor: sched.floor()}
}

// periodicCheckpoint fires the OnCheckpoint hook after sweep k when the
// periodic cadence hits. It never fires for the final sweep — the run is
// about to return its result, so there is nothing left worth resuming. A
// capture or hook failure aborts the solve: the caller asked for durability,
// and silently continuing without it would turn a full-disk into lost work
// discovered only after the next crash.
func periodicCheckpoint(p *Problem, lab *img.Labels, samplers []core.LabelSampler, opts SolveOptions,
	k int, ti tempIter, energy float64, track bool, iterations int) error {
	if opts.OnCheckpoint == nil || opts.CheckpointEvery <= 0 {
		return nil
	}
	if (k+1)%opts.CheckpointEvery != 0 || k+1 >= iterations {
		return nil
	}
	st, err := captureState(p, lab, samplers, opts, k+1, ti.t, energy, track)
	if err != nil {
		return fmt.Errorf("mrf: sweep %d checkpoint: %w", k, err)
	}
	if err := opts.OnCheckpoint(st); err != nil {
		return fmt.Errorf("mrf: sweep %d checkpoint: %w", k, err)
	}
	return nil
}

// cancelCheckpoint captures a final snapshot when a run is cancelled, so the
// in-flight work survives the cancellation (the serving layer's drain path
// and the CLI's -timeout both rely on this). The snapshot resumes at sweep
// k — the sweep the cancellation pre-empted. Capture or hook errors are
// joined onto the cancellation cause rather than replacing it.
func cancelCheckpoint(cause error, p *Problem, lab *img.Labels, samplers []core.LabelSampler, opts SolveOptions,
	k int, ti tempIter, energy float64, track bool) error {
	if opts.OnCheckpoint == nil {
		return cause
	}
	st, err := captureState(p, lab, samplers, opts, k, ti.t, energy, track)
	if err != nil {
		return errors.Join(cause, fmt.Errorf("mrf: cancellation checkpoint: %w", err))
	}
	if err := opts.OnCheckpoint(st); err != nil {
		return errors.Join(cause, fmt.Errorf("mrf: cancellation checkpoint: %w", err))
	}
	return cause
}
