package mrf

import (
	"fmt"
	"sync"

	"rsu/internal/core"
	"rsu/internal/img"
)

// SolveParallel runs checkerboard-parallel simulated-annealing Gibbs
// sampling: pixels of one checkerboard color have no 4-neighborhood edges
// between them, so the discrete RSU-G accelerator (and this solver) can
// update a whole color class concurrently without changing the Markov
// chain's stationary distribution. One sampler is required per worker —
// samplers hold per-stream RNG state and are not safe to share.
func SolveParallel(p *Problem, samplers []core.LabelSampler, sched Schedule, opts SolveOptions) (*img.Labels, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	if len(samplers) == 0 {
		return nil, fmt.Errorf("mrf: need at least one sampler")
	}
	for i, s := range samplers {
		if s == nil {
			return nil, fmt.Errorf("mrf: nil sampler at index %d", i)
		}
	}
	lab := opts.Init
	if lab == nil {
		lab = img.NewLabels(p.W, p.H)
	} else {
		if lab.W != p.W || lab.H != p.H {
			return nil, fmt.Errorf("mrf: init labeling %dx%d does not match problem %dx%d", lab.W, lab.H, p.W, p.H)
		}
		lab = lab.Clone()
	}
	for i, l := range lab.L {
		if l < 0 || l >= p.Labels {
			return nil, fmt.Errorf("mrf: init label %d at index %d out of range [0,%d)", l, i, p.Labels)
		}
	}

	singles := p.singletonTable()

	// Pre-split each color class into contiguous worker shards of rows so
	// each worker touches a disjoint pixel set.
	workers := len(samplers)
	type shard struct{ y0, y1 int }
	shards := make([]shard, 0, workers)
	rows := p.H
	for w := 0; w < workers; w++ {
		y0 := rows * w / workers
		y1 := rows * (w + 1) / workers
		shards = append(shards, shard{y0, y1})
	}

	var wg sync.WaitGroup
	for k := 0; k < sched.Iterations; k++ {
		T := sched.Temperature(k)
		for _, s := range samplers {
			s.SetTemperature(T)
		}
		for color := 0; color < 2; color++ {
			for w, sh := range shards {
				if sh.y0 == sh.y1 {
					continue
				}
				wg.Add(1)
				go func(w int, sh shard) {
					defer wg.Done()
					s := samplers[w]
					energies := make([]float64, p.Labels)
					for y := sh.y0; y < sh.y1; y++ {
						for x := (y + color) % 2; x < p.W; x += 2 {
							p.LabelEnergies(energies, singles, lab, x, y)
							lab.Set(x, y, s.Sample(energies, lab.At(x, y)))
						}
					}
				}(w, sh)
			}
			wg.Wait()
		}
		if opts.OnSweep != nil {
			opts.OnSweep(k, lab)
		}
	}
	return lab, nil
}
