package mrf

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"rsu/internal/core"
	"rsu/internal/img"
)

// checkerCells returns the linear pixel indices (y*W + x) of each
// checkerboard color class, color 0 first. Pixels within one class share no
// 4-neighborhood edge, so any partition of a class updates safely in
// parallel.
func checkerCells(w, h int) [2][]int32 {
	var cells [2][]int32
	for color := 0; color < 2; color++ {
		cs := make([]int32, 0, (w*h+1)/2)
		for y := 0; y < h; y++ {
			for x := (y + color) % 2; x < w; x += 2 {
				cs = append(cs, int32(y*w+x))
			}
		}
		cells[color] = cs
	}
	return cells
}

// shardCells splits a color class into `workers` near-equal contiguous
// shards of cells. Sharding cells rather than rows keeps every worker busy
// even for short-and-wide grids (H < workers), where row sharding left
// workers idle and silently degraded the parallelism.
func shardCells(cells []int32, workers int) [][]int32 {
	shards := make([][]int32, workers)
	n := len(cells)
	for w := 0; w < workers; w++ {
		shards[w] = cells[n*w/workers : n*(w+1)/workers]
	}
	return shards
}

// solverPool is the persistent checkerboard worker pool, phase-barrier
// synchronized. Logical workers — one sampler (RNG stream) and one shard
// per color each — fix the solver's output; a smaller set of long-lived
// executor goroutines runs them. Executor 0 is the goroutine driving
// sweep() itself, executors 1..E-1 park on unbuffered command channels.
// Each executor processes its contiguous block of logical workers
// sequentially, so for a fixed seed set and worker count the labeling is
// bit-identical at every executor count (shards are disjoint within a
// color phase), while machines with fewer cores than workers avoid the
// scheduler churn of oversubscribed OS threads.
type solverPool struct {
	p        *Problem
	tab      *Tables
	lab      *img.Labels
	samplers []core.BatchSampler // AsBatch-wrapped; fused for Unit/Software
	shards   [2][][]int32
	track    bool // maintain the energy delta per sweep (OnSweep is set)
	nexec    int  // executor goroutines (including the sweep() goroutine)

	cmds   []chan int // phase commands for executors 1..E-1 (a checkerboard color)
	phase  sync.WaitGroup
	exit   sync.WaitGroup
	errs   []error   // per-worker first error; index = worker, owner = worker
	flips  []int     // per-worker flip counts for the current sweep
	edelta []float64 // per-worker energy deltas for the current sweep

	// Executor 0 runs inline on the goroutine driving sweep() — parking it
	// at the phase barrier while another thread is woken to do the work
	// would be pure scheduler churn. These are its scratch buffers.
	energies0 []float64
	currents0 []int
	out0      []int
}

// newSolverPool starts the executor goroutines (beyond executor 0, which is
// the caller of sweep()).
func newSolverPool(p *Problem, tab *Tables, lab *img.Labels, samplers []core.LabelSampler, shards [2][][]int32, track bool, nexec int) *solverPool {
	workers := len(samplers)
	batched := make([]core.BatchSampler, workers)
	for w, s := range samplers {
		batched[w] = core.AsBatch(s)
	}
	segCap := (p.W + 1) / 2
	pool := &solverPool{
		p: p, tab: tab, lab: lab, samplers: batched, shards: shards, track: track,
		nexec:     nexec,
		cmds:      make([]chan int, nexec-1),
		errs:      make([]error, workers),
		flips:     make([]int, workers),
		edelta:    make([]float64, workers),
		energies0: make([]float64, segCap*p.Labels),
		currents0: make([]int, segCap),
		out0:      make([]int, segCap),
	}
	for i := range pool.cmds {
		pool.cmds[i] = make(chan int)
		pool.exit.Add(1)
		go pool.run(i + 1)
	}
	return pool
}

// resolveExecutors maps the SolveOptions.Executors knob onto a concrete
// executor count for the given logical worker count: <= 0 means
// min(workers, NumCPU, GOMAXPROCS), and any request is clamped to
// [1, workers].
func resolveExecutors(requested, workers int) int {
	e := requested
	if e <= 0 {
		e = runtime.NumCPU()
		if g := runtime.GOMAXPROCS(0); g < e {
			e = g
		}
	}
	if e > workers {
		e = workers
	}
	if e < 1 {
		e = 1
	}
	return e
}

// run is one executor's loop: park on the command channel, process the
// commanded color phase over this executor's block of logical workers,
// signal the phase barrier, repeat until the channel closes. The scratch
// buffers — sized for the longest possible same-color row segment — are
// allocated once here and reused for every segment of every sweep, so
// steady-state sweeps allocate nothing.
func (pool *solverPool) run(e int) {
	defer pool.exit.Done()
	segCap := (pool.p.W + 1) / 2
	energies := make([]float64, segCap*pool.p.Labels)
	currents := make([]int, segCap)
	out := make([]int, segCap)
	for color := range pool.cmds[e-1] {
		pool.execPhase(e, color, energies, currents, out)
		pool.phase.Done()
	}
}

// execPhase runs one color phase for executor e's contiguous block of
// logical workers, sequentially and in worker order.
func (pool *solverPool) execPhase(e, color int, energies []float64, currents, out []int) {
	workers := len(pool.samplers)
	for w := e * workers / pool.nexec; w < (e+1)*workers/pool.nexec; w++ {
		pool.shard(w, color, energies, currents, out)
	}
}

// shard processes worker w's cells of one color class as fused row segments:
// every maximal same-row run of the shard is gathered with one
// LabelEnergiesSeg call and drawn with one SampleBatch call. Within a color
// phase no cell's neighbors change (neighbors are all the other color), so
// batch-gathering a whole segment before drawing it yields exactly the
// energies — and therefore exactly the RNG draws — of the per-pixel loop.
// A sampler error or panic is captured into the worker's error slot
// (panic-to-error hardening: a panicking sampler must fail the solve, not
// kill the process); the worker then sits out the rest of the run but keeps
// honoring the phase barrier so the solve can unwind cleanly.
func (pool *solverPool) shard(w, color int, energies []float64, currents, out []int) {
	defer func() {
		if r := recover(); r != nil {
			pool.errs[w] = fmt.Errorf("mrf: worker %d panicked: %v", w, r)
		}
	}()
	if pool.errs[w] != nil {
		return
	}
	s := pool.samplers[w]
	p, tab, lab := pool.p, pool.tab, pool.lab
	L := p.Labels
	cells := pool.shards[color][w]
	for i := 0; i < len(cells); {
		c := int(cells[i])
		x0, y := c%p.W, c/p.W
		// Extend across the same-row stride-2 run. The row bound matters:
		// for odd W the next row's first cell continues the stride-2 linear
		// sequence, so contiguity of indices alone would jump rows.
		n := 1
		nmax := (p.W - x0 + 1) / 2
		if m := len(cells) - i; nmax > m {
			nmax = m
		}
		for n < nmax && int(cells[i+n]) == c+2*n {
			n++
		}
		tab.LabelEnergiesSeg(energies[:n*L], lab, y, x0, 2, n)
		for j := 0; j < n; j++ {
			currents[j] = lab.L[c+2*j]
		}
		if err := s.SampleBatch(energies[:n*L], L, currents[:n], out[:n]); err != nil {
			pool.errs[w] = fmt.Errorf("mrf: worker %d pixel (%d,%d): %w", w, x0, y, err)
			return
		}
		for j := 0; j < n; j++ {
			if next := out[j]; next != currents[j] {
				if pool.track {
					pool.edelta[w] += tab.FlipDelta(lab, x0+2*j, y, currents[j], next)
				}
				lab.L[c+2*j] = next
				pool.flips[w]++
			}
		}
		i += n
	}
}

// sweep drives both color phases of one sweep through the barrier and
// returns the sweep's flip count and energy delta (and the first worker
// error, if any). The channel sends publish the main goroutine's writes to
// the workers; phase.Wait publishes the workers' label writes back — the
// same happens-before edges the per-sweep WaitGroup used to provide.
// Per-worker deltas are summed in worker order, so the tracked energy is
// deterministic for a fixed shard assignment.
func (pool *solverPool) sweep() (int, float64, error) {
	for color := 0; color < 2; color++ {
		pool.phase.Add(len(pool.cmds))
		for _, cmd := range pool.cmds {
			cmd <- color
		}
		// Executor 0 runs inline on this goroutine instead of parking at
		// the barrier — same samplers, same shards, same draw order.
		pool.execPhase(0, color, pool.energies0, pool.currents0, pool.out0)
		pool.phase.Wait()
	}
	flips := 0
	var delta float64
	for w := range pool.flips {
		flips += pool.flips[w]
		pool.flips[w] = 0
		delta += pool.edelta[w]
		pool.edelta[w] = 0
	}
	for _, err := range pool.errs {
		if err != nil {
			return flips, delta, err
		}
	}
	return flips, delta, nil
}

// stop shuts the workers down and waits for every goroutine to exit, so a
// returned solve never leaks pool goroutines.
func (pool *solverPool) stop() {
	for _, cmd := range pool.cmds {
		close(cmd)
	}
	pool.exit.Wait()
}

// SolveParallel runs checkerboard-parallel simulated-annealing Gibbs
// sampling: pixels of one checkerboard color have no 4-neighborhood edges
// between them, so the discrete RSU-G accelerator (and this solver) can
// update a whole color class concurrently without changing the Markov
// chain's stationary distribution. One sampler is required per worker —
// samplers hold per-stream RNG state and are not safe to share. For a fixed
// seed set and worker count the result is bit-identical across runs: shard
// assignment is deterministic and workers write disjoint pixels.
func SolveParallel(p *Problem, samplers []core.LabelSampler, sched Schedule, opts SolveOptions) (*img.Labels, error) {
	return SolveParallelCtx(context.Background(), p, samplers, sched, opts)
}

// SolveParallelCtx is SolveParallel with cooperative cancellation: the
// context is checked between sweeps (so a finished sweep is always a
// consistent labeling) and on cancellation the partial labeling is returned
// together with ctx.Err(). Worker goroutines are fully shut down before the
// function returns on every path.
func SolveParallelCtx(ctx context.Context, p *Problem, samplers []core.LabelSampler, sched Schedule, opts SolveOptions) (*img.Labels, error) {
	if len(samplers) == 0 {
		return nil, fmt.Errorf("mrf: need at least one sampler")
	}
	if opts.Shards.Tiles() > 1 {
		return nil, fmt.Errorf("mrf: SolveOptions.Shards %s needs one sampler per tile — use SolveAuto or SolveSharded with a factory", opts.Shards)
	}
	for i, s := range samplers {
		if s == nil {
			return nil, fmt.Errorf("mrf: nil sampler at index %d", i)
		}
	}
	lab, tab, err := prepare(p, sched, opts)
	if err != nil {
		return nil, err
	}
	// Worker w hosts fault stream w — the same mapping at every executor
	// count, so faulted runs keep the executor bit-invariance guarantee.
	defer attachFaults(opts, samplers...)()

	workers := len(samplers)
	cells := checkerCells(p.W, p.H)
	var shards [2][][]int32
	for color := 0; color < 2; color++ {
		shards[color] = shardCells(cells[color], workers)
	}

	track := opts.OnSweep != nil
	pool := newSolverPool(p, tab, lab, samplers, shards, track, resolveExecutors(opts.Executors, workers))
	defer pool.stop()

	var energy float64
	if track {
		energy = tab.TotalEnergy(lab)
	}
	first := 0
	ti := sched.iter()
	if st := opts.Resume; st != nil {
		if err := checkResumeShards(st, 0, 0); err != nil {
			return nil, err
		}
		if err := applyResume(st, sched, samplers, opts); err != nil {
			return nil, err
		}
		first = st.NextSweep
		ti = resumeIter(st, sched)
		if track && st.EnergyTracked {
			// Restore the incremental accumulator (initial TotalEnergy plus
			// worker-ordered FlipDeltas); recomputing it from the restored
			// grid would only agree to rounding.
			energy = st.Energy
		}
	}
	for k := first; k < sched.Iterations; k++ {
		if err := ctx.Err(); err != nil {
			return lab, cancelCheckpoint(err, p, lab, samplers, opts, k, ti, energy, track)
		}
		start := time.Now()
		T := ti.next()
		for _, s := range samplers {
			if err := s.SetTemperature(T); err != nil {
				return lab, fmt.Errorf("mrf: sweep %d: %w", k, err)
			}
		}
		flips, delta, err := pool.sweep()
		if err != nil {
			return lab, err
		}
		if track {
			energy += delta
			emitSweep(opts, lab, k, T, energy, flips, start)
		}
		// The pool's phase barrier has already published every worker's label
		// writes to this goroutine, so the collector observes a consistent
		// post-sweep labeling regardless of Workers/Executors counts.
		if opts.Collector != nil {
			opts.Collector.Collect(k, lab)
		}
		if err := periodicCheckpoint(p, lab, samplers, opts, k, ti, energy, track, sched.Iterations); err != nil {
			return lab, err
		}
	}
	return lab, nil
}
