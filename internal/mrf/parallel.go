package mrf

import (
	"fmt"
	"sync"

	"rsu/internal/core"
	"rsu/internal/img"
)

// checkerCells returns the linear pixel indices (y*W + x) of each
// checkerboard color class, color 0 first. Pixels within one class share no
// 4-neighborhood edge, so any partition of a class updates safely in
// parallel.
func checkerCells(w, h int) [2][]int32 {
	var cells [2][]int32
	for color := 0; color < 2; color++ {
		cs := make([]int32, 0, (w*h+1)/2)
		for y := 0; y < h; y++ {
			for x := (y + color) % 2; x < w; x += 2 {
				cs = append(cs, int32(y*w+x))
			}
		}
		cells[color] = cs
	}
	return cells
}

// shardCells splits a color class into `workers` near-equal contiguous
// shards of cells. Sharding cells rather than rows keeps every worker busy
// even for short-and-wide grids (H < workers), where row sharding left
// workers idle and silently degraded the parallelism.
func shardCells(cells []int32, workers int) [][]int32 {
	shards := make([][]int32, workers)
	n := len(cells)
	for w := 0; w < workers; w++ {
		shards[w] = cells[n*w/workers : n*(w+1)/workers]
	}
	return shards
}

// SolveParallel runs checkerboard-parallel simulated-annealing Gibbs
// sampling: pixels of one checkerboard color have no 4-neighborhood edges
// between them, so the discrete RSU-G accelerator (and this solver) can
// update a whole color class concurrently without changing the Markov
// chain's stationary distribution. One sampler is required per worker —
// samplers hold per-stream RNG state and are not safe to share. For a fixed
// seed set and worker count the result is bit-identical across runs: shard
// assignment is deterministic and workers write disjoint pixels.
func SolveParallel(p *Problem, samplers []core.LabelSampler, sched Schedule, opts SolveOptions) (*img.Labels, error) {
	if len(samplers) == 0 {
		return nil, fmt.Errorf("mrf: need at least one sampler")
	}
	for i, s := range samplers {
		if s == nil {
			return nil, fmt.Errorf("mrf: nil sampler at index %d", i)
		}
	}
	lab, tab, err := prepare(p, sched, opts)
	if err != nil {
		return nil, err
	}

	workers := len(samplers)
	cells := checkerCells(p.W, p.H)
	var shards [2][][]int32
	for color := 0; color < 2; color++ {
		shards[color] = shardCells(cells[color], workers)
	}

	var wg sync.WaitGroup
	for k := 0; k < sched.Iterations; k++ {
		T := sched.Temperature(k)
		for _, s := range samplers {
			s.SetTemperature(T)
		}
		for color := 0; color < 2; color++ {
			for w, shard := range shards[color] {
				if len(shard) == 0 {
					continue
				}
				wg.Add(1)
				go func(s core.LabelSampler, shard []int32) {
					defer wg.Done()
					energies := make([]float64, p.Labels)
					for _, c := range shard {
						x, y := int(c)%p.W, int(c)/p.W
						tab.LabelEnergies(energies, lab, x, y)
						lab.Set(x, y, s.Sample(energies, lab.At(x, y)))
					}
				}(samplers[w], shard)
			}
			wg.Wait()
		}
		if opts.OnSweep != nil {
			opts.OnSweep(k, lab)
		}
	}
	return lab, nil
}
