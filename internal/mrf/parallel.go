package mrf

import (
	"context"
	"fmt"
	"sync"
	"time"

	"rsu/internal/core"
	"rsu/internal/img"
)

// checkerCells returns the linear pixel indices (y*W + x) of each
// checkerboard color class, color 0 first. Pixels within one class share no
// 4-neighborhood edge, so any partition of a class updates safely in
// parallel.
func checkerCells(w, h int) [2][]int32 {
	var cells [2][]int32
	for color := 0; color < 2; color++ {
		cs := make([]int32, 0, (w*h+1)/2)
		for y := 0; y < h; y++ {
			for x := (y + color) % 2; x < w; x += 2 {
				cs = append(cs, int32(y*w+x))
			}
		}
		cells[color] = cs
	}
	return cells
}

// shardCells splits a color class into `workers` near-equal contiguous
// shards of cells. Sharding cells rather than rows keeps every worker busy
// even for short-and-wide grids (H < workers), where row sharding left
// workers idle and silently degraded the parallelism.
func shardCells(cells []int32, workers int) [][]int32 {
	shards := make([][]int32, workers)
	n := len(cells)
	for w := 0; w < workers; w++ {
		shards[w] = cells[n*w/workers : n*(w+1)/workers]
	}
	return shards
}

// solverPool is the persistent checkerboard worker pool: one long-lived
// goroutine per sampler, phase-barrier synchronized. The previous
// implementation spawned 2×workers fresh goroutines every sweep; the pool
// starts each goroutine once, parks it on an unbuffered command channel,
// and drives it through the color phases of every sweep. RNG consumption
// order is unchanged — worker w still processes exactly shards[color][w]
// in order with samplers[w] — so results are bit-identical to the
// per-sweep-spawn solver for a fixed seed set and worker count.
type solverPool struct {
	p        *Problem
	tab      *Tables
	lab      *img.Labels
	samplers []core.LabelSampler
	shards   [2][][]int32

	cmds  []chan int // per-worker phase commands (a checkerboard color)
	phase sync.WaitGroup
	exit  sync.WaitGroup
	errs  []error // per-worker first error; index = worker, owner = worker
	flips []int   // per-worker flip counts for the current sweep
}

// newSolverPool starts the worker goroutines.
func newSolverPool(p *Problem, tab *Tables, lab *img.Labels, samplers []core.LabelSampler, shards [2][][]int32) *solverPool {
	workers := len(samplers)
	pool := &solverPool{
		p: p, tab: tab, lab: lab, samplers: samplers, shards: shards,
		cmds:  make([]chan int, workers),
		errs:  make([]error, workers),
		flips: make([]int, workers),
	}
	for w := range pool.cmds {
		pool.cmds[w] = make(chan int)
		pool.exit.Add(1)
		go pool.run(w)
	}
	return pool
}

// run is one worker's loop: park on the command channel, process the
// commanded color phase over this worker's shard, signal the phase barrier,
// repeat until the channel closes.
func (pool *solverPool) run(w int) {
	defer pool.exit.Done()
	energies := make([]float64, pool.p.Labels)
	for color := range pool.cmds[w] {
		pool.shard(w, color, energies)
		pool.phase.Done()
	}
}

// shard processes worker w's cells of one color class. A sampler error or
// panic is captured into the worker's error slot (panic-to-error hardening:
// a panicking sampler must fail the solve, not kill the process); the
// worker then sits out the rest of the run but keeps honoring the phase
// barrier so the solve can unwind cleanly.
func (pool *solverPool) shard(w, color int, energies []float64) {
	defer func() {
		if r := recover(); r != nil {
			pool.errs[w] = fmt.Errorf("mrf: worker %d panicked: %v", w, r)
		}
	}()
	if pool.errs[w] != nil {
		return
	}
	s := pool.samplers[w]
	p, tab, lab := pool.p, pool.tab, pool.lab
	for _, c := range pool.shards[color][w] {
		x, y := int(c)%p.W, int(c)/p.W
		tab.LabelEnergies(energies, lab, x, y)
		cur := lab.At(x, y)
		next, err := s.Sample(energies, cur)
		if err != nil {
			pool.errs[w] = fmt.Errorf("mrf: worker %d pixel (%d,%d): %w", w, x, y, err)
			return
		}
		if next != cur {
			lab.Set(x, y, next)
			pool.flips[w]++
		}
	}
}

// sweep drives both color phases of one sweep through the barrier and
// returns the sweep's flip count (and the first worker error, if any).
// The channel sends publish the main goroutine's writes to the workers;
// phase.Wait publishes the workers' label writes back — the same
// happens-before edges the per-sweep WaitGroup used to provide.
func (pool *solverPool) sweep() (int, error) {
	for color := 0; color < 2; color++ {
		pool.phase.Add(len(pool.cmds))
		for _, cmd := range pool.cmds {
			cmd <- color
		}
		pool.phase.Wait()
	}
	flips := 0
	for w := range pool.flips {
		flips += pool.flips[w]
		pool.flips[w] = 0
	}
	for _, err := range pool.errs {
		if err != nil {
			return flips, err
		}
	}
	return flips, nil
}

// stop shuts the workers down and waits for every goroutine to exit, so a
// returned solve never leaks pool goroutines.
func (pool *solverPool) stop() {
	for _, cmd := range pool.cmds {
		close(cmd)
	}
	pool.exit.Wait()
}

// SolveParallel runs checkerboard-parallel simulated-annealing Gibbs
// sampling: pixels of one checkerboard color have no 4-neighborhood edges
// between them, so the discrete RSU-G accelerator (and this solver) can
// update a whole color class concurrently without changing the Markov
// chain's stationary distribution. One sampler is required per worker —
// samplers hold per-stream RNG state and are not safe to share. For a fixed
// seed set and worker count the result is bit-identical across runs: shard
// assignment is deterministic and workers write disjoint pixels.
func SolveParallel(p *Problem, samplers []core.LabelSampler, sched Schedule, opts SolveOptions) (*img.Labels, error) {
	return SolveParallelCtx(context.Background(), p, samplers, sched, opts)
}

// SolveParallelCtx is SolveParallel with cooperative cancellation: the
// context is checked between sweeps (so a finished sweep is always a
// consistent labeling) and on cancellation the partial labeling is returned
// together with ctx.Err(). Worker goroutines are fully shut down before the
// function returns on every path.
func SolveParallelCtx(ctx context.Context, p *Problem, samplers []core.LabelSampler, sched Schedule, opts SolveOptions) (*img.Labels, error) {
	if len(samplers) == 0 {
		return nil, fmt.Errorf("mrf: need at least one sampler")
	}
	for i, s := range samplers {
		if s == nil {
			return nil, fmt.Errorf("mrf: nil sampler at index %d", i)
		}
	}
	lab, tab, err := prepare(p, sched, opts)
	if err != nil {
		return nil, err
	}

	workers := len(samplers)
	cells := checkerCells(p.W, p.H)
	var shards [2][][]int32
	for color := 0; color < 2; color++ {
		shards[color] = shardCells(cells[color], workers)
	}

	pool := newSolverPool(p, tab, lab, samplers, shards)
	defer pool.stop()

	for k := 0; k < sched.Iterations; k++ {
		if err := ctx.Err(); err != nil {
			return lab, err
		}
		start := time.Now()
		T := sched.Temperature(k)
		for _, s := range samplers {
			if err := s.SetTemperature(T); err != nil {
				return lab, fmt.Errorf("mrf: sweep %d: %w", k, err)
			}
		}
		flips, err := pool.sweep()
		if err != nil {
			return lab, err
		}
		if opts.OnSweep != nil {
			emitSweep(opts, tab, lab, k, T, flips, start)
		}
	}
	return lab, nil
}
