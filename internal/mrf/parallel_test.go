package mrf

import (
	"testing"

	"rsu/internal/core"
	"rsu/internal/img"
	"rsu/internal/rng"
)

func mkSamplers(n int, seed uint64) []core.LabelSampler {
	ss := make([]core.LabelSampler, n)
	for i := range ss {
		ss[i] = core.NewSoftwareSampler(rng.NewXoshiro256(seed + uint64(i)))
	}
	return ss
}

func TestSolveParallelRecoversTwoRegions(t *testing.T) {
	p := twoRegionProblem(16, 12)
	lab, err := SolveParallel(p, mkSamplers(4, 1), Schedule{T0: 4, Alpha: 0.85, Iterations: 40}, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wrong := 0
	for y := 0; y < p.H; y++ {
		for x := 0; x < p.W; x++ {
			want := 0
			if x >= p.W/2 {
				want = 1
			}
			if lab.At(x, y) != want {
				wrong++
			}
		}
	}
	if wrong > 3 {
		t.Fatalf("parallel solve mislabeled %d/%d pixels", wrong, p.W*p.H)
	}
}

func TestSolveParallelMatchesSequentialQuality(t *testing.T) {
	p := twoRegionProblem(20, 14)
	sched := Schedule{T0: 4, Alpha: 0.88, Iterations: 35}
	seq, err := Solve(p, core.NewSoftwareSampler(rng.NewXoshiro256(2)), sched, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := SolveParallel(p, mkSamplers(3, 3), sched, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Same stationary distribution: final energies must be comparable.
	eSeq, ePar := p.TotalEnergy(seq), p.TotalEnergy(par)
	if ePar > eSeq*1.3+20 {
		t.Fatalf("parallel final energy %v much worse than sequential %v", ePar, eSeq)
	}
}

func TestSolveParallelWithRSUGUnits(t *testing.T) {
	p := twoRegionProblem(12, 10)
	samplers := []core.LabelSampler{
		core.MustUnit(core.NewRSUG(), rng.NewXoshiro256(4), true),
		core.MustUnit(core.NewRSUG(), rng.NewXoshiro256(5), true),
	}
	lab, err := SolveParallel(p, samplers, Schedule{T0: 4, Alpha: 0.85, Iterations: 40}, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wrong := 0
	for y := 0; y < p.H; y++ {
		for x := 0; x < p.W; x++ {
			want := 0
			if x >= p.W/2 {
				want = 1
			}
			if lab.At(x, y) != want {
				wrong++
			}
		}
	}
	if wrong > 4 {
		t.Fatalf("parallel RSU-G solve mislabeled %d/%d pixels", wrong, p.W*p.H)
	}
}

func TestSolveParallelErrors(t *testing.T) {
	p := twoRegionProblem(6, 6)
	sched := Schedule{T0: 2, Alpha: 0.9, Iterations: 2}
	if _, err := SolveParallel(p, nil, sched, SolveOptions{}); err == nil {
		t.Error("empty samplers must error")
	}
	if _, err := SolveParallel(p, []core.LabelSampler{nil}, sched, SolveOptions{}); err == nil {
		t.Error("nil sampler must error")
	}
	if _, err := SolveParallel(p, mkSamplers(2, 9), Schedule{}, SolveOptions{}); err == nil {
		t.Error("bad schedule must error")
	}
	if _, err := SolveParallel(p, mkSamplers(2, 9), sched, SolveOptions{Init: img.NewLabels(2, 2)}); err == nil {
		t.Error("mismatched init must error")
	}
}

func TestSolveParallelMoreWorkersThanRows(t *testing.T) {
	p := twoRegionProblem(8, 3)
	if _, err := SolveParallel(p, mkSamplers(8, 11), Schedule{T0: 2, Alpha: 0.9, Iterations: 3}, SolveOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveParallelDoesNotMutateInit(t *testing.T) {
	p := twoRegionProblem(8, 6)
	init := img.NewLabels(8, 6).Fill(1)
	if _, err := SolveParallel(p, mkSamplers(2, 12), Schedule{T0: 2, Alpha: 0.9, Iterations: 2}, SolveOptions{Init: init}); err != nil {
		t.Fatal(err)
	}
	for _, l := range init.L {
		if l != 1 {
			t.Fatal("SolveParallel mutated the caller's init labeling")
		}
	}
}
