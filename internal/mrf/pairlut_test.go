package mrf

import (
	"testing"
)

// TestBuildPairLUTMatchesTables: the standalone pairwise LUT must be
// byte-identical to the one BuildTables embeds.
func TestBuildPairLUTMatchesTables(t *testing.T) {
	for pi, p := range tablesTestProblems() {
		lut := p.BuildPairLUT()
		tab := p.BuildTables()
		if lut.Labels != p.Labels || len(lut.Pair) != p.Labels*p.Labels {
			t.Fatalf("problem %d: LUT shape %d/%d, want %d/%d", pi, lut.Labels, len(lut.Pair), p.Labels, p.Labels*p.Labels)
		}
		for i, v := range lut.Pair {
			if tab.Pair[i] != v {
				t.Fatalf("problem %d pair[%d]: standalone %v, embedded %v", pi, i, v, tab.Pair[i])
			}
		}
	}
}

// TestBuildTablesShared: sharing a pre-built LUT must give tables that
// evaluate identically to freshly built ones, reuse the LUT's storage, and
// reject a LUT built for a different label count.
func TestBuildTablesShared(t *testing.T) {
	probs := tablesTestProblems()
	for pi, p := range probs {
		lut := p.BuildPairLUT()
		shared, err := p.BuildTablesShared(lut)
		if err != nil {
			t.Fatalf("problem %d: BuildTablesShared: %v", pi, err)
		}
		fresh := p.BuildTables()
		if &shared.Pair[0] != &lut.Pair[0] {
			t.Fatalf("problem %d: shared tables copied the pair LUT instead of aliasing it", pi)
		}
		for i := range fresh.Pair {
			if shared.Pair[i] != fresh.Pair[i] {
				t.Fatalf("problem %d pair[%d]: shared %v, fresh %v", pi, i, shared.Pair[i], fresh.Pair[i])
			}
		}
		for i := range fresh.Singles {
			if shared.Singles[i] != fresh.Singles[i] {
				t.Fatalf("problem %d single[%d]: shared %v, fresh %v", pi, i, shared.Singles[i], fresh.Singles[i])
			}
		}
	}

	// A nil LUT degrades to BuildTables.
	if tab, err := probs[0].BuildTablesShared(nil); err != nil || tab == nil {
		t.Fatalf("nil LUT: tables %v err %v, want fresh tables", tab, err)
	}

	// Label-count mismatch must be rejected, not silently mis-indexed.
	wrong := probs[2] // 3 labels vs probs[0]'s 6
	if _, err := probs[0].BuildTablesShared(wrong.BuildPairLUT()); err == nil {
		t.Fatal("BuildTablesShared accepted a LUT for the wrong label count")
	}
}
