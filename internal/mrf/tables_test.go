package mrf

import (
	"math"
	"testing"

	"rsu/internal/core"
	"rsu/internal/img"
	"rsu/internal/rng"
)

// TestTemperatureMatchesLoop pins the closed-form schedule to the O(k)
// multiplication loop it replaced, including the 1e-4 floor.
func TestTemperatureMatchesLoop(t *testing.T) {
	loop := func(s Schedule, k int) float64 {
		v := s.T0
		for i := 0; i < k; i++ {
			v *= s.Alpha
		}
		if v < 1e-4 {
			v = 1e-4
		}
		return v
	}
	schedules := []Schedule{
		{T0: 32, Alpha: 0.9885, Iterations: 500},
		{T0: 32, Alpha: 0.982, Iterations: 300},
		{T0: 6, Alpha: 1, Iterations: 30},
		{T0: 1, Alpha: 0.1, Iterations: 100},
	}
	for _, s := range schedules {
		for _, k := range []int{0, 1, 2, 7, 50, 499, 2000} {
			got, want := s.Temperature(k), loop(s, k)
			if math.Abs(got-want) > 1e-9*want {
				t.Errorf("T0=%v Alpha=%v k=%d: Temperature %v, loop %v", s.T0, s.Alpha, k, got, want)
			}
		}
	}
}

// tablesTestProblems returns problems covering every distance kind, a custom
// PairDist, and truncation.
func tablesTestProblems() []*Problem {
	single := func(x, y, l int) float64 { return float64(l*(x+2*y)) * 0.7 }
	return []*Problem{
		{W: 5, H: 4, Labels: 6, Singleton: single, PairWeight: 1.5, Dist: Absolute},
		{W: 5, H: 4, Labels: 6, Singleton: single, PairWeight: 2, Dist: Squared, TruncateDist: 9},
		{W: 4, H: 5, Labels: 3, Singleton: single, PairWeight: 20, Dist: Binary},
		{W: 4, H: 4, Labels: 4, Singleton: single, PairWeight: 1,
			PairDist: func(a, b int) float64 { return float64((a - b) * (a - b) % 5) }, Dist: Squared},
	}
}

// TestTablesLabelEnergiesMatchDirect checks the LUT fast path against the
// direct per-call evaluation on every pixel (interior and border) under a
// non-trivial labeling.
func TestTablesLabelEnergiesMatchDirect(t *testing.T) {
	for pi, p := range tablesTestProblems() {
		tab := p.BuildTables()
		lab := img.NewLabels(p.W, p.H)
		for i := range lab.L {
			lab.L[i] = (i*7 + 3) % p.Labels
		}
		singles := p.singletonTable()
		direct := make([]float64, p.Labels)
		fast := make([]float64, p.Labels)
		for y := 0; y < p.H; y++ {
			for x := 0; x < p.W; x++ {
				p.LabelEnergies(direct, singles, lab, x, y)
				tab.LabelEnergies(fast, lab, x, y)
				for l := 0; l < p.Labels; l++ {
					if direct[l] != fast[l] {
						t.Fatalf("problem %d (%d,%d) label %d: direct %v, tables %v",
							pi, x, y, l, direct[l], fast[l])
					}
				}
			}
		}
	}
}

// TestShardCellsBalanced checks the short-and-wide fix: with H < workers,
// every worker still receives cells, shards are disjoint, and together they
// cover the whole color class.
func TestShardCellsBalanced(t *testing.T) {
	const w, h, workers = 40, 2, 8
	cells := checkerCells(w, h)
	for color := 0; color < 2; color++ {
		shards := shardCells(cells[color], workers)
		seen := map[int32]bool{}
		for wi, shard := range shards {
			if len(shard) == 0 {
				t.Fatalf("color %d worker %d got an empty shard (H < workers imbalance)", color, wi)
			}
			if d := len(shard) - len(cells[color])/workers; d < 0 || d > 1 {
				t.Fatalf("color %d worker %d shard size %d not balanced", color, wi, len(shard))
			}
			for _, c := range shard {
				if seen[c] {
					t.Fatalf("cell %d assigned twice", c)
				}
				seen[c] = true
			}
		}
		if len(seen) != len(cells[color]) {
			t.Fatalf("color %d: shards cover %d cells, class has %d", color, len(seen), len(cells[color]))
		}
	}
}

func sfactory(seed uint64) func(int) core.LabelSampler {
	return func(w int) core.LabelSampler {
		return core.NewSoftwareSampler(rng.NewXoshiro256(seed + 1000*uint64(w)))
	}
}

// TestSolveAutoSerialMatchesSolve pins Workers=1 to the exact serial path.
func TestSolveAutoSerialMatchesSolve(t *testing.T) {
	p := twoRegionProblem(14, 9)
	sched := Schedule{T0: 4, Alpha: 0.9, Iterations: 20}
	a, err := SolveAuto(p, sfactory(21), sched, SolveOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(p, sfactory(21)(0), sched, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.L {
		if a.L[i] != b.L[i] {
			t.Fatalf("Workers=1 SolveAuto differs from Solve at index %d", i)
		}
	}
}

// TestSolveAutoDeterministicPerWorkerCount: same seed + same worker count
// must be bit-identical; different worker counts must still land at
// comparable energies (same stationary distribution).
func TestSolveAutoDeterministicPerWorkerCount(t *testing.T) {
	p := twoRegionProblem(18, 5)
	sched := Schedule{T0: 4, Alpha: 0.88, Iterations: 30}
	for _, workers := range []int{1, 2, 3, 8} {
		a, err := SolveAuto(p, sfactory(7), sched, SolveOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		b, err := SolveAuto(p, sfactory(7), sched, SolveOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.L {
			if a.L[i] != b.L[i] {
				t.Fatalf("workers=%d: two identical runs diverge at index %d", workers, i)
			}
		}
	}
	e1, err := SolveAuto(p, sfactory(7), sched, SolveOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	e4, err := SolveAuto(p, sfactory(7), sched, SolveOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(p.TotalEnergy(e1) - p.TotalEnergy(e4)); d > p.TotalEnergy(e1)*0.3+20 {
		t.Fatalf("1-worker vs 4-worker energies diverge: %v vs %v", p.TotalEnergy(e1), p.TotalEnergy(e4))
	}
}

func TestSolveAutoErrors(t *testing.T) {
	p := twoRegionProblem(6, 6)
	sched := Schedule{T0: 2, Alpha: 0.9, Iterations: 2}
	if _, err := SolveAuto(p, nil, sched, SolveOptions{}); err == nil {
		t.Error("nil factory must error")
	}
	if _, err := SolveAuto(p, sfactory(1), Schedule{}, SolveOptions{Workers: 2}); err == nil {
		t.Error("bad schedule must error through the parallel path")
	}
}

// TestSolveOptionsTablesReuse: precomputed tables produce identical results
// and tables from another problem are rejected.
func TestSolveOptionsTablesReuse(t *testing.T) {
	p := twoRegionProblem(10, 8)
	sched := Schedule{T0: 3, Alpha: 0.9, Iterations: 10}
	tab := p.BuildTables()
	a, err := Solve(p, core.NewSoftwareSampler(rng.NewXoshiro256(31)), sched, SolveOptions{Tables: tab})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(p, core.NewSoftwareSampler(rng.NewXoshiro256(31)), sched, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.L {
		if a.L[i] != b.L[i] {
			t.Fatal("reused tables changed the solve result")
		}
	}
	other := twoRegionProblem(10, 8)
	if _, err := Solve(p, core.NewSoftwareSampler(rng.NewXoshiro256(31)), sched,
		SolveOptions{Tables: other.BuildTables()}); err == nil {
		t.Error("tables from a different problem must be rejected")
	}
}

func TestResolveWorkers(t *testing.T) {
	if ResolveWorkers(3) != 3 {
		t.Error("explicit worker count must pass through")
	}
	if ResolveWorkers(0) < 1 {
		t.Error("0 must resolve to GOMAXPROCS >= 1")
	}
}
