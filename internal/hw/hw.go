// Package hw models RSU-G area and power at the component level,
// reproducing the paper's Table III (new RSU-G breakdown) and Table IV
// (area versus RNG-based alternatives). The paper derived its numbers from
// Cacti and a 15 nm predictive-process Verilog synthesis plus
// first-principles optics sizing; those tools are not reproducible here, so
// the primitive constants below are calibrated to the paper's published
// component totals (DESIGN.md §4) while the *structure* — what is private,
// what amortizes under sharing, how converter realizations compare — is
// modeled explicitly and exercised by the experiments.
package hw

import "fmt"

// AreaPower is an area/power pair in the paper's reporting units.
type AreaPower struct {
	AreaUm2 float64
	PowerMW float64
}

// Add returns the component-wise sum.
func (a AreaPower) Add(b AreaPower) AreaPower {
	return AreaPower{a.AreaUm2 + b.AreaUm2, a.PowerMW + b.PowerMW}
}

// Scale returns a scaled by k.
func (a AreaPower) Scale(k float64) AreaPower {
	return AreaPower{a.AreaUm2 * k, a.PowerMW * k}
}

// Component is a named design block with a unit cost and a replication count.
type Component struct {
	Name  string
	Unit  AreaPower
	Count int
	// Shareable marks optical resources (light sources, waveguides) that
	// can amortize across RSU-Gs on the same waveguide (Sec. IV-B-6).
	Shareable bool
}

// Total returns the component's aggregate cost.
func (c Component) Total() AreaPower { return c.Unit.Scale(float64(c.Count)) }

// Design is a named list of components.
type Design struct {
	Name       string
	Components []Component
}

// Total sums all components.
func (d Design) Total() AreaPower {
	var t AreaPower
	for _, c := range d.Components {
		t = t.Add(c.Total())
	}
	return t
}

// ShareableArea returns the area of components that amortize under light
// source / waveguide sharing.
func (d Design) ShareableArea() float64 {
	var a float64
	for _, c := range d.Components {
		if c.Shareable {
			a += c.Total().AreaUm2
		}
	}
	return a
}

// Group sums components whose names carry the given prefix, used to report
// the paper's three Table III rows (RET circuit / CMOS circuitry / LUT).
func (d Design) Group(prefix string) AreaPower {
	var t AreaPower
	for _, c := range d.Components {
		if len(c.Name) >= len(prefix) && c.Name[:len(prefix)] == prefix {
			t = t.Add(c.Total())
		}
	}
	return t
}

// underWaveguideReclaimUm2 is the CMOS area the optimistic layout hides
// underneath the waveguides (Table IV, RSUG_optimistic).
const underWaveguideReclaimUm2 = 236

// NewRSUGDesign returns the new RSU-G component inventory. Group totals
// reproduce Table III: RET circuit 1120 um^2 / 0.08 mW, CMOS circuitry
// 1128 um^2 / 3.49 mW, LUT 655 um^2 / 1.42 mW; RSU total 2903 um^2 /
// 4.99 mW.
func NewRSUGDesign() Design {
	return Design{
		Name: "new-RSUG",
		Components: []Component{
			// --- RET circuit (per Fig. 11): 8 replica rows, each with one
			// QDLED driving a waveguide coupled to 4 concentrations.
			{Name: "ret/qdled", Unit: AreaPower{80, 0.00375}, Count: 8, Shareable: true},
			{Name: "ret/waveguide", Unit: AreaPower{20, 0}, Count: 8, Shareable: true},
			{Name: "ret/network", Unit: AreaPower{3, 0}, Count: 32},
			{Name: "ret/spad", Unit: AreaPower{6, 0.00125}, Count: 32},
			{Name: "ret/mux32", Unit: AreaPower{32, 0.01}, Count: 1},
			// --- CMOS circuitry: the pipeline of Fig. 10.
			{Name: "cmos/energy-datapath", Unit: AreaPower{430, 1.60}, Count: 1},
			{Name: "cmos/emin-fifo", Unit: AreaPower{420, 1.10}, Count: 1},
			{Name: "cmos/boundary-converter", Unit: AreaPower{60, 0.12}, Count: 1},
			{Name: "cmos/timing", Unit: AreaPower{150, 0.50}, Count: 1},
			{Name: "cmos/selection", Unit: AreaPower{68, 0.17}, Count: 1},
			// --- Label-value LUT backing the multi-distance energy stage
			// (Sec. IV-B-1).
			{Name: "lut/label-values", Unit: AreaPower{655, 1.42}, Count: 1},
		},
	}
}

// PrevRSUGDesign returns the previous RSU-G inventory (Wang et al. [5]):
// intensity-modulated single-network circuits replicated 4x, an
// energy-to-intensity LUT converter, and a squared-distance-only energy
// stage. Totals reproduce the paper's 0.0029 mm^2 / 3.91 mW, with the
// single RET circuit at 1/0.7 x area and 1/0.5 x power of the new one
// (Sec. IV-C).
func PrevRSUGDesign() Design {
	return Design{
		Name: "prev-RSUG",
		Components: []Component{
			// 4 replicated circuits, each: 16-level QDLED bank + 1 network
			// + 1 SPAD on its own waveguide.
			{Name: "ret/qdled-bank", Unit: AreaPower{330, 0.0325}, Count: 4, Shareable: true},
			{Name: "ret/waveguide", Unit: AreaPower{20, 0}, Count: 4, Shareable: true},
			{Name: "ret/network", Unit: AreaPower{3, 0}, Count: 4},
			{Name: "ret/spad", Unit: AreaPower{47, 0.0075}, Count: 4},
			// Squared-distance-only energy stage and pipeline.
			{Name: "cmos/energy-datapath", Unit: AreaPower{540, 1.75}, Count: 1},
			{Name: "cmos/timing", Unit: AreaPower{150, 0.50}, Count: 1},
			{Name: "cmos/selection", Unit: AreaPower{68, 0.17}, Count: 1},
			// Energy-to-intensity LUT converter (256 x 4 bits).
			{Name: "lut/energy-to-intensity", Unit: AreaPower{542, 1.33}, Count: 1},
		},
	}
}

// RSUGArea returns the per-unit area of the new RSU-G when `share` units
// amortize one light-source set (Table IV: RSUG_noshare, RSUG_4share).
func RSUGArea(share int) float64 {
	if share < 1 {
		panic("hw: share must be >= 1")
	}
	d := NewRSUGDesign()
	total := d.Total().AreaUm2
	shareable := d.ShareableArea()
	return total - shareable + shareable/float64(share)
}

// RSUGOptimisticArea returns the Table IV RSUG_optimistic point: light
// sources amortized to negligible area across many units and CMOS placed
// underneath the waveguides.
func RSUGOptimisticArea() float64 {
	d := NewRSUGDesign()
	return d.Total().AreaUm2 - d.ShareableArea() - underWaveguideReclaimUm2
}

// RNGAlternative models a pure-CMOS sampling-unit alternative from Table IV:
// a generator core that `share` sampling units can time-multiplex, plus the
// per-unit CDF LUT + comparator overhead that programmability requires.
type RNGAlternative struct {
	Name string
	// CoreAreaUm2 is the generator core (shareable).
	CoreAreaUm2 float64
	// PerUnitOverheadUm2 is the per-sampling-unit CDF storage/compare logic.
	PerUnitOverheadUm2 float64
	// MaxShare bounds how many units one core can feed (throughput limit);
	// 1 means the core cannot be shared (e.g. Intel DRNG).
	MaxShare int
}

// AreaPerUnit returns the per-sampling-unit area at the given sharing level.
func (r RNGAlternative) AreaPerUnit(share int) (float64, error) {
	if share < 1 {
		return 0, fmt.Errorf("hw: share must be >= 1")
	}
	if share > r.MaxShare {
		return 0, fmt.Errorf("hw: %s supports at most %d-way sharing", r.Name, r.MaxShare)
	}
	return r.CoreAreaUm2/float64(share) + r.PerUnitOverheadUm2, nil
}

// MT19937Alt returns the Mersenne-Twister hardware model, scaled to 15 nm
// from the VLSI design the paper cites. Calibrated so 1/4/208-way sharing
// reproduces Table IV's 19269 / 6507 / 2336 um^2.
func MT19937Alt() RNGAlternative {
	return RNGAlternative{Name: "mt19937", CoreAreaUm2: 17016, PerUnitOverheadUm2: 2253, MaxShare: 208}
}

// LFSR19Alt returns the 19-bit LFSR model: a negligible core with the same
// class of per-unit CDF overhead (Table IV: 2186 um^2, unshared).
func LFSR19Alt() RNGAlternative {
	return RNGAlternative{Name: "lfsr19", CoreAreaUm2: 30, PerUnitOverheadUm2: 2156, MaxShare: 1}
}

// IntelDRNGAlt returns the Intel DRNG (AES-256 stage only) model; its
// throughput supports a single sampling unit (Table IV: 3721 um^2).
func IntelDRNGAlt() RNGAlternative {
	return RNGAlternative{Name: "intel-drng", CoreAreaUm2: 1468, PerUnitOverheadUm2: 2253, MaxShare: 1}
}

// ConverterComparison returns the energy-to-lambda converter costs for the
// LUT realization and the comparison-based realization. The paper reports
// the comparison design at 0.46x area and 0.22x power of the LUT
// (Sec. IV-B-3).
func ConverterComparison() (lut, cmp AreaPower) {
	cmp = AreaPower{60, 0.12}
	lut = AreaPower{cmp.AreaUm2 / 0.46, cmp.PowerMW / 0.22}
	return lut, cmp
}

// EntropyRateGbps is the new RSU-G's entropy generation rate (Sec. II-C).
const EntropyRateGbps = 2.89

// IntelDRNGPowerMW is the Intel DRNG power at 6.4 Gb/s; the RSU-G consumes
// ~13% of it in similar area (Sec. II-C).
const IntelDRNGPowerMW = 30
