package hw

import (
	"fmt"
	"math"
)

// The Sec. IV-B-5/6 sizing rules: timing precision sets how many RET
// circuit replicas overlap (the observation window in cycles), and the
// distribution truncation sets how many replica rows each circuit needs so
// a network is not reused before its residual excitation decays below the
// 0.4% cleanliness target.

// binsPerCycle is the clock-multiplied timing resolution (8 x 1 GHz).
const binsPerCycle = 8

// residualTarget is the paper's 99.6% cleanliness point.
const residualTarget = 0.004

// CircuitReplicas returns the RET circuits needed to sustain one label per
// cycle at the given Time_bits: the window spans 2^T bins = 2^T/8 cycles.
func CircuitReplicas(timeBits int) int {
	if timeBits < 1 {
		panic("hw: timeBits must be >= 1")
	}
	w := (1 << timeBits) / binsPerCycle
	if w < 1 {
		w = 1
	}
	return w
}

// ReplicaRows returns the rows per circuit required so a row sits idle long
// enough that P(residual excitation) = Truncation^rows <= 0.4%.
func ReplicaRows(truncation float64) int {
	if truncation <= 0 || truncation >= 1 {
		panic("hw: truncation must be in (0,1)")
	}
	if truncation <= residualTarget {
		return 1
	}
	return int(math.Ceil(math.Log(residualTarget) / math.Log(truncation)))
}

// DesignPointCost returns the optical-side (RET circuit bank) cost of a
// (Time_bits, Truncation) design point, built from the same primitive
// constants as NewRSUGDesign: per row one QDLED + waveguide, four
// concentration networks and four SPADs, plus a SPAD mux per circuit.
func DesignPointCost(timeBits int, truncation float64) AreaPower {
	circuits := CircuitReplicas(timeBits)
	rows := ReplicaRows(truncation)
	perRow := AreaPower{80 + 20 + 4*3 + 4*6, 0.00375 + 4*0.00125}
	mux := AreaPower{float64(4 * rows), 0.01}
	perCircuit := perRow.Scale(float64(rows)).Add(mux)
	return perCircuit.Scale(float64(circuits))
}

// RelativeDesignCost normalizes a design point against the paper's chosen
// (Time_bits 5, Truncation 0.5) configuration.
func RelativeDesignCost(timeBits int, truncation float64) (area, power float64) {
	ref := DesignPointCost(5, 0.5)
	pt := DesignPointCost(timeBits, truncation)
	return pt.AreaUm2 / ref.AreaUm2, pt.PowerMW / ref.PowerMW
}

// DesignPoint describes one point of the Fig. 8 diagonal with its cost.
type DesignPoint struct {
	TimeBits   int
	Truncation float64
	Circuits   int
	Rows       int
	Cost       AreaPower
	RelArea    float64
	RelPower   float64
}

// DiagonalPoints returns the equal-quality trade-off points the paper's
// Fig. 8 identifies, with their optical costs.
func DiagonalPoints() []DesignPoint {
	pts := []struct {
		t  int
		tr float64
	}{
		{3, 0.9}, {4, 0.7}, {5, 0.5}, {6, 0.3}, {8, 0.1},
	}
	var out []DesignPoint
	for _, p := range pts {
		cost := DesignPointCost(p.t, p.tr)
		ra, rp := RelativeDesignCost(p.t, p.tr)
		out = append(out, DesignPoint{
			TimeBits:   p.t,
			Truncation: p.tr,
			Circuits:   CircuitReplicas(p.t),
			Rows:       ReplicaRows(p.tr),
			Cost:       cost,
			RelArea:    ra,
			RelPower:   rp,
		})
	}
	return out
}

// String renders a design point compactly.
func (d DesignPoint) String() string {
	return fmt.Sprintf("T%d/%.2f: %d circuits x %d rows, %.0f um^2, %.2f mW (%.2fx area, %.2fx power)",
		d.TimeBits, d.Truncation, d.Circuits, d.Rows, d.Cost.AreaUm2, d.Cost.PowerMW, d.RelArea, d.RelPower)
}
