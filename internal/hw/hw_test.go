package hw

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestTableIIINewRSUGBreakdown(t *testing.T) {
	d := NewRSUGDesign()
	ret := d.Group("ret/")
	cmos := d.Group("cmos/")
	lut := d.Group("lut/")
	approx(t, "RET circuit area", ret.AreaUm2, 1120, 0.5)
	approx(t, "RET circuit power", ret.PowerMW, 0.08, 0.005)
	approx(t, "CMOS area", cmos.AreaUm2, 1128, 0.5)
	approx(t, "CMOS power", cmos.PowerMW, 3.49, 0.005)
	approx(t, "LUT area", lut.AreaUm2, 655, 0.5)
	approx(t, "LUT power", lut.PowerMW, 1.42, 0.005)
	total := d.Total()
	approx(t, "RSU total area", total.AreaUm2, 2903, 0.5)
	approx(t, "RSU total power", total.PowerMW, 4.99, 0.01)
}

func TestPrevRSUGTotals(t *testing.T) {
	d := PrevRSUGDesign()
	total := d.Total()
	// Paper Sec. II-C: 0.0029 mm^2, 3.91 mW.
	approx(t, "prev total area", total.AreaUm2, 2900, 1)
	approx(t, "prev total power", total.PowerMW, 3.91, 0.01)
}

func TestNewVsPrevRatios(t *testing.T) {
	nu := NewRSUGDesign().Total()
	pv := PrevRSUGDesign().Total()
	// Paper: 1.27x power at equivalent area.
	approx(t, "power ratio", nu.PowerMW/pv.PowerMW, 1.27, 0.01)
	approx(t, "area ratio", nu.AreaUm2/pv.AreaUm2, 1.0, 0.01)
}

func TestSingleRETCircuitRatios(t *testing.T) {
	// Paper Sec. IV-C: the new RET circuit alone is 0.7x area and 0.5x
	// power of the previous design's.
	nu := NewRSUGDesign().Group("ret/")
	pv := PrevRSUGDesign().Group("ret/")
	approx(t, "RET area ratio", nu.AreaUm2/pv.AreaUm2, 0.7, 0.01)
	approx(t, "RET power ratio", nu.PowerMW/pv.PowerMW, 0.5, 0.01)
}

func TestTableIVRSUGVariants(t *testing.T) {
	approx(t, "RSUG_noshare", RSUGArea(1), 2903, 0.5)
	approx(t, "RSUG_4share", RSUGArea(4), 2303, 0.5)
	approx(t, "RSUG_optimistic", RSUGOptimisticArea(), 1867, 0.5)
}

func TestTableIVRNGAlternatives(t *testing.T) {
	mt := MT19937Alt()
	for _, c := range []struct {
		share int
		want  float64
	}{{1, 19269}, {4, 6507}, {208, 2336}} {
		got, err := mt.AreaPerUnit(c.share)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, "mt19937 area", got, c.want, 2)
	}
	lf, err := LFSR19Alt().AreaPerUnit(1)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "lfsr19 area", lf, 2186, 0.5)
	dr, err := IntelDRNGAlt().AreaPerUnit(1)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "intel drng area", dr, 3721, 0.5)
}

func TestRNGShareLimits(t *testing.T) {
	if _, err := IntelDRNGAlt().AreaPerUnit(2); err == nil {
		t.Error("DRNG cannot be shared (throughput limit)")
	}
	if _, err := MT19937Alt().AreaPerUnit(209); err == nil {
		t.Error("mt19937 sharing bounded at 208")
	}
	if _, err := MT19937Alt().AreaPerUnit(0); err == nil {
		t.Error("share 0 must error")
	}
}

func TestConverterComparisonRatios(t *testing.T) {
	lut, cmp := ConverterComparison()
	approx(t, "converter area ratio", cmp.AreaUm2/lut.AreaUm2, 0.46, 0.001)
	approx(t, "converter power ratio", cmp.PowerMW/lut.PowerMW, 0.22, 0.001)
}

func TestConverterMemoryMatchesCore(t *testing.T) {
	// The CMOS boundary-converter block in the design must be the one the
	// ConverterComparison models.
	d := NewRSUGDesign()
	bc := d.Group("cmos/boundary-converter")
	_, cmp := ConverterComparison()
	if bc.AreaUm2 != cmp.AreaUm2 || bc.PowerMW != cmp.PowerMW {
		t.Errorf("design converter %+v != comparison model %+v", bc, cmp)
	}
}

func TestAreaPowerArithmetic(t *testing.T) {
	a := AreaPower{10, 1}.Add(AreaPower{5, 0.5})
	if a.AreaUm2 != 15 || a.PowerMW != 1.5 {
		t.Errorf("Add wrong: %+v", a)
	}
	s := AreaPower{10, 1}.Scale(3)
	if s.AreaUm2 != 30 || s.PowerMW != 3 {
		t.Errorf("Scale wrong: %+v", s)
	}
}

func TestEntropyPowerClaim(t *testing.T) {
	// Sec. II-C: RSU-G consumes ~13% of Intel DRNG power in similar area.
	pv := PrevRSUGDesign().Total()
	ratio := pv.PowerMW / IntelDRNGPowerMW
	if ratio < 0.10 || ratio > 0.16 {
		t.Errorf("power ratio vs DRNG = %v, want ~0.13", ratio)
	}
}

func TestRSUGAreaPanicsOnBadShare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for share 0")
		}
	}()
	RSUGArea(0)
}

func TestShareableAreaIsOptical(t *testing.T) {
	d := NewRSUGDesign()
	if got := d.ShareableArea(); got != 800 {
		t.Errorf("shareable area = %v, want 800 (QDLEDs + waveguides)", got)
	}
}
