package hw

import (
	"math"
	"testing"
)

func TestCircuitReplicas(t *testing.T) {
	cases := map[int]int{3: 1, 4: 2, 5: 4, 6: 8, 8: 32}
	for tb, want := range cases {
		if got := CircuitReplicas(tb); got != want {
			t.Errorf("CircuitReplicas(%d) = %d, want %d", tb, got, want)
		}
	}
}

func TestReplicaRows(t *testing.T) {
	// The paper's anchors: truncation 0.5 needs 8 rows (0.5^8 < 0.4%),
	// truncation 0.004 needs a single row.
	if got := ReplicaRows(0.5); got != 8 {
		t.Errorf("ReplicaRows(0.5) = %d, want 8", got)
	}
	if got := ReplicaRows(0.004); got != 1 {
		t.Errorf("ReplicaRows(0.004) = %d, want 1", got)
	}
	if got := ReplicaRows(0.9); got != 53 {
		t.Errorf("ReplicaRows(0.9) = %d, want 53", got)
	}
	// The sizing rule must actually meet the target.
	for _, tr := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		rows := ReplicaRows(tr)
		if resid := math.Pow(tr, float64(rows)); resid > residualTarget {
			t.Errorf("truncation %v with %d rows leaves residual %v > %v", tr, rows, resid, residualTarget)
		}
		if rows > 1 {
			if resid := math.Pow(tr, float64(rows-1)); resid <= residualTarget {
				t.Errorf("truncation %v: %d rows is not minimal", tr, rows)
			}
		}
	}
}

func TestDesignPointCostChosenPoint(t *testing.T) {
	// (T5, 0.5): 4 circuits x 8 rows. Per-row primitives match the
	// Table III inventory (QDLED 80, waveguide 20, 4 networks, 4 SPADs).
	cost := DesignPointCost(5, 0.5)
	perRow := 80.0 + 20 + 4*3 + 4*6
	want := 4 * (8*perRow + 4*8) // + per-circuit mux
	if math.Abs(cost.AreaUm2-want) > 0.5 {
		t.Fatalf("chosen-point area %v, want %v", cost.AreaUm2, want)
	}
	ra, rp := RelativeDesignCost(5, 0.5)
	if ra != 1 || rp != 1 {
		t.Fatalf("chosen point must normalize to 1.0/1.0, got %v/%v", ra, rp)
	}
}

func TestDiagonalTradeoffShape(t *testing.T) {
	pts := DiagonalPoints()
	if len(pts) != 5 {
		t.Fatalf("want 5 diagonal points, got %d", len(pts))
	}
	// Circuits grow with Time_bits; rows shrink with Truncation.
	for i := 1; i < len(pts); i++ {
		if pts[i].Circuits <= pts[i-1].Circuits {
			t.Errorf("circuits must grow along the diagonal: %v", pts)
		}
		if pts[i].Rows >= pts[i-1].Rows {
			t.Errorf("rows must shrink along the diagonal: %v", pts)
		}
	}
	// The chosen point should be at or near the cost minimum — the
	// "good balance" claim.
	minIdx := 0
	for i, p := range pts {
		if p.Cost.AreaUm2 < pts[minIdx].Cost.AreaUm2 {
			minIdx = i
		}
	}
	chosen := 2 // (T5, 0.5)
	if d := minIdx - chosen; d < -1 || d > 1 {
		t.Errorf("cost minimum at index %d (%+v); chosen point %d not near-optimal", minIdx, pts[minIdx], chosen)
	}
	if pts[chosen].RelArea != 1 {
		t.Error("chosen point must have relative area 1")
	}
}

func TestDesignPointString(t *testing.T) {
	s := DiagonalPoints()[2].String()
	if s == "" || s[0] != 'T' {
		t.Fatalf("unexpected rendering %q", s)
	}
}

func TestDesignSpacePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"timebits": func() { CircuitReplicas(0) },
		"trunc-lo": func() { ReplicaRows(0) },
		"trunc-hi": func() { ReplicaRows(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
