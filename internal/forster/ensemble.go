package forster

import (
	"fmt"
	"math"

	"rsu/internal/rng"
)

// Ensemble models a RET circuit's molecular layer: Copies identical,
// non-interacting networks under a pump of the given intensity. Each copy
// absorbs a pump photon at rate Intensity x AbsorbCross per input
// chromophore; the absorbed exciton then transports through the copy. The
// SPAD sees the *first* detected photon across all copies — which is the
// first-to-fire primitive, and whose time is (approximately, exactly in the
// absorption-limited regime) exponential with rate
//
//	lambda ≈ Copies x inputs x Intensity x AbsorbCross x efficiency,
//
// i.e. linear in both concentration (Copies) and intensity — the two
// decay-rate knobs of the new and previous RSU-G designs respectively.
type Ensemble struct {
	Net *Network
	// Copies is the number of network copies in the excitation volume
	// (proportional to chromophore concentration).
	Copies int
	// Intensity is the pump drive (relative units).
	Intensity float64
	// AbsorbCross is the absorption rate per unit intensity per input
	// chromophore (1/ns at Intensity 1).
	AbsorbCross float64
}

// Validate reports configuration errors.
func (e *Ensemble) Validate() error {
	if e.Net == nil {
		return fmt.Errorf("forster: nil network")
	}
	if err := e.Net.Validate(); err != nil {
		return err
	}
	if e.Copies < 1 || e.Intensity <= 0 || e.AbsorbCross <= 0 {
		return fmt.Errorf("forster: need Copies >= 1, positive Intensity and AbsorbCross")
	}
	return nil
}

// FirstPhoton simulates one detection window of unbounded length and
// returns the time (ns) of the first detected photon across all copies.
// ok is false if no copy ever produces a detected photon within horizon.
func (e *Ensemble) FirstPhoton(horizon float64, src rng.Source) (float64, bool) {
	if err := e.Validate(); err != nil {
		panic(err)
	}
	inputs := e.Net.InputIndices()
	absRate := e.Intensity * e.AbsorbCross
	best := math.Inf(1)
	// Each copy absorbs pump photons as a Poisson process on each input
	// chromophore; an absorption whose exciton fails to reach the emitter
	// leaves the copy ready to absorb again (the pump stays on). Detected
	// photons per copy therefore form a thinned Poisson process of rate
	// inputs x absRate x efficiency, and the ensemble's first photon is
	// exponential in Copies x Intensity exactly. Absorptions beyond the
	// horizon or the current best photon cannot win and stop the copy.
	for c := 0; c < e.Copies; c++ {
		var t float64
		for {
			t += rng.Exponential(src, absRate*float64(len(inputs)))
			if t >= best || t > horizon {
				break
			}
			in := inputs[rng.Intn(src, len(inputs))]
			out, tTrans := e.Net.Transport(in, src)
			if out == Detected {
				if tt := t + tTrans; tt < best {
					best = tt
				}
				break
			}
			// Exciton lost; the copy keeps absorbing. Transport is fast
			// next to absorption waits, so overlapping re-excitation is
			// negligible and t simply advances past the failed attempt.
			t += tTrans
		}
	}
	if math.IsInf(best, 1) || best > horizon {
		return 0, false
	}
	return best, true
}

// MeasureRate estimates the effective exponential rate of the first-photon
// process from n windows: rate = 1 / mean(first-photon time), conditioning
// on detection within the horizon.
func (e *Ensemble) MeasureRate(n int, horizon float64, src rng.Source) (rate float64, detectFrac float64) {
	var sum float64
	hits := 0
	for i := 0; i < n; i++ {
		if t, ok := e.FirstPhoton(horizon, src); ok {
			sum += t
			hits++
		}
	}
	if hits == 0 {
		return 0, 0
	}
	return float64(hits) / sum, float64(hits) / float64(n)
}

// Samples draws n first-photon times (unconditioned windows are skipped),
// for distribution tests.
func (e *Ensemble) Samples(n int, horizon float64, src rng.Source) []float64 {
	var xs []float64
	for len(xs) < n {
		if t, ok := e.FirstPhoton(horizon, src); ok {
			xs = append(xs, t)
		}
	}
	return xs
}

// TwoStageChain builds the canonical input -> relay -> emitter network used
// by the tests and the device-validation experiment: three chromophores on
// a line with the given spacings (nm), R0 = r0 for adjacent species pairs.
func TwoStageChain(spacing, r0 float64) *Network {
	return &Network{
		Kinds: []Kind{
			{Name: "input", EmitRate: 0.25, LossRate: 0.05, Input: true},
			{Name: "relay", EmitRate: 0.25, LossRate: 0.05},
			{Name: "emitter", EmitRate: 0.5, LossRate: 0.05, Detected: true},
		},
		Chromophores: []Chromophore{
			{Pos: [3]float64{0, 0, 0}, Kind: 0},
			{Pos: [3]float64{spacing, 0, 0}, Kind: 1},
			{Pos: [3]float64{2 * spacing, 0, 0}, Kind: 2},
		},
		// Energy flows downhill: input->relay, relay->emitter.
		R0: [][]float64{
			{0, r0, 0},
			{0, 0, r0},
			{0, 0, 0},
		},
	}
}

// DonorAcceptorPair builds an isolated two-chromophore network at distance
// r with Förster radius r0 and no non-radiative loss, matching the textbook
// efficiency formula.
func DonorAcceptorPair(r, r0 float64) *Network {
	return &Network{
		Kinds: []Kind{
			{Name: "donor", EmitRate: 1, Input: true},
			{Name: "acceptor", EmitRate: 1, Detected: true},
		},
		Chromophores: []Chromophore{
			{Pos: [3]float64{0, 0, 0}, Kind: 0},
			{Pos: [3]float64{r, 0, 0}, Kind: 1},
		},
		R0: [][]float64{
			{0, r0},
			{0, 0},
		},
	}
}
