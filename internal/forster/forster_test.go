package forster

import (
	"math"
	"testing"

	"rsu/internal/rng"
	"rsu/internal/stats"
)

func TestPairEfficiencyMatchesFoersterFormula(t *testing.T) {
	src := rng.NewXoshiro256(1)
	for _, ratio := range []float64{0.5, 0.8, 1.0, 1.3, 2.0} {
		r0 := 5.0
		net := DonorAcceptorPair(ratio*r0, r0)
		got := net.TransferEfficiency(0, 200000, src)
		want := PairEfficiencyTheory(ratio*r0, r0)
		if math.Abs(got-want) > 0.005 {
			t.Errorf("r/R0=%v: efficiency %v, want %v", ratio, got, want)
		}
	}
}

func TestPairEfficiencyHalfAtR0(t *testing.T) {
	// The textbook anchor: E = 1/2 exactly at r = R0.
	if got := PairEfficiencyTheory(6, 6); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("theory E(R0) = %v, want 0.5", got)
	}
}

func TestChainEfficiencyIsProductOfStages(t *testing.T) {
	// Two sequential hops at spacing = R0 with per-kind loss: the chain
	// efficiency is the product of per-hop branching probabilities.
	src := rng.NewXoshiro256(2)
	net := TwoStageChain(5, 5)
	if err := net.prepare(); err != nil {
		t.Fatal(err)
	}
	// Per-hop: transfer rate at r = R0 equals the donor's intrinsic decay
	// (0.3); P(hop) = 0.3/0.6 = 0.5 on each of the two stages, and the
	// emitter then radiates with 0.5/0.55.
	want := 0.5 * 0.5 * (0.5 / 0.55)
	got := net.TransferEfficiency(0, 300000, src)
	if math.Abs(got-want) > 0.005 {
		t.Fatalf("chain efficiency %v, want %v", got, want)
	}
}

func TestTransportOutcomesExhaustive(t *testing.T) {
	src := rng.NewXoshiro256(3)
	net := TwoStageChain(5, 5)
	counts := map[Outcome]int{}
	for i := 0; i < 50000; i++ {
		out, dt := net.Transport(0, src)
		if dt <= 0 {
			t.Fatal("transport time must be positive")
		}
		counts[out]++
	}
	for _, o := range []Outcome{Detected, LostPhoton, Quenched} {
		if counts[o] == 0 {
			t.Errorf("outcome %d never observed", o)
		}
	}
}

func TestValidateRejectsBadNetworks(t *testing.T) {
	good := DonorAcceptorPair(5, 5)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Network{
		{},
		{Kinds: good.Kinds, Chromophores: good.Chromophores, R0: [][]float64{{0}}},
		{Kinds: []Kind{{Name: "x"}}, Chromophores: []Chromophore{{}}, R0: [][]float64{{0}}},
	}
	for i, n := range bad {
		if n.Validate() == nil {
			t.Errorf("network %d unexpectedly valid", i)
		}
	}
	noDet := DonorAcceptorPair(5, 5)
	noDet.Kinds[1].Detected = false
	if noDet.Validate() == nil {
		t.Error("network without detected kind must be invalid")
	}
}

func TestCoincidentChromophoresRejected(t *testing.T) {
	n := DonorAcceptorPair(0, 5)
	if err := n.prepare(); err == nil {
		t.Fatal("zero-distance pair must error")
	}
}

func testEnsemble(copies int, intensity float64) *Ensemble {
	return &Ensemble{
		Net:       TwoStageChain(5, 5),
		Copies:    copies,
		Intensity: intensity,
		// Deep absorption-limited regime: the ~5 ns transport time is
		// negligible against the >300 ns absorption wait, so the
		// first-photon process is exponential to measurement precision.
		AbsorbCross: 0.0002,
	}
}

func TestFirstPhotonExponentialInAbsorptionLimit(t *testing.T) {
	e := testEnsemble(64, 1)
	src := rng.NewXoshiro256(4)
	xs := e.Samples(3000, 1e6, src)
	rate, _ := e.MeasureRate(3000, 1e6, src)
	res, err := stats.KSTest(xs, stats.ExponentialCDF(rate))
	if err != nil {
		t.Fatal(err)
	}
	// The transport time adds a small non-exponential component; at this
	// absorption-limited operating point it is negligible at KS scale.
	if res.PValue < 1e-4 {
		t.Fatalf("first-photon times reject exponentiality: D %.4f p %.5f", res.Statistic, res.PValue)
	}
}

func TestRateLinearInConcentration(t *testing.T) {
	// The new RSU-G's knob: doubling copies doubles the decay rate.
	src := rng.NewXoshiro256(5)
	r1, _ := testEnsemble(32, 1).MeasureRate(4000, 1e6, src)
	r2, _ := testEnsemble(64, 1).MeasureRate(4000, 1e6, src)
	r4, _ := testEnsemble(128, 1).MeasureRate(4000, 1e6, src)
	if math.Abs(r2/r1-2) > 0.15 {
		t.Errorf("2x copies gave rate ratio %v, want ~2", r2/r1)
	}
	if math.Abs(r4/r1-4) > 0.3 {
		t.Errorf("4x copies gave rate ratio %v, want ~4", r4/r1)
	}
}

func TestRateLinearInIntensity(t *testing.T) {
	// The previous RSU-G's knob: doubling QDLED intensity doubles the rate.
	src := rng.NewXoshiro256(6)
	r1, _ := testEnsemble(64, 0.5).MeasureRate(4000, 1e6, src)
	r2, _ := testEnsemble(64, 1.0).MeasureRate(4000, 1e6, src)
	if math.Abs(r2/r1-2) > 0.15 {
		t.Errorf("2x intensity gave rate ratio %v, want ~2", r2/r1)
	}
}

func TestFirstPhotonHorizon(t *testing.T) {
	e := testEnsemble(2, 0.0005)
	src := rng.NewXoshiro256(7)
	misses := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if _, ok := e.FirstPhoton(10, src); !ok {
			misses++
		}
	}
	if misses == 0 {
		t.Fatal("a tight horizon must produce empty windows")
	}
}

func TestEnsembleValidate(t *testing.T) {
	if (&Ensemble{}).Validate() == nil {
		t.Error("empty ensemble must be invalid")
	}
	e := testEnsemble(0, 1)
	if e.Validate() == nil {
		t.Error("zero copies must be invalid")
	}
}
