// Package forster models RET networks at the exciton level, grounding the
// exponential time-to-fluorescence abstraction the RSU-G builds on
// (Sec. II-B and the theoretical foundation of Wang et al., IEEE Micro'15).
//
// A RET network is a set of chromophores placed with sub-nanometer
// precision on a DNA scaffold. An exciton created on an input chromophore
// hops between chromophores through non-radiative dipole-dipole coupling at
// the Förster rate k_T = k_D * (R0 / r)^6 — where k_D is the donor's
// intrinsic decay rate, R0 the Förster radius of the donor/acceptor pair
// and r their distance — until it is emitted (radiatively) or lost
// (non-radiatively). The package simulates this continuous-time Markov
// chain exactly and provides ensemble statistics that justify the two
// decay-rate control knobs the paper's designs use: excitation intensity
// (previous RSU-G) and network concentration (new RSU-G).
package forster

import (
	"fmt"
	"math"

	"rsu/internal/rng"
)

// Kind is a chromophore species with its photophysics.
type Kind struct {
	Name string
	// EmitRate is the radiative decay rate (1/ns).
	EmitRate float64
	// LossRate is the non-radiative decay rate (1/ns).
	LossRate float64
	// Input marks species that absorb the pump light (excitation entry).
	Input bool
	// Detected marks species whose emission lands in the SPAD's spectral
	// band (the network's output chromophore).
	Detected bool
}

// Chromophore is one dye molecule at a scaffold position (nm).
type Chromophore struct {
	Pos  [3]float64
	Kind int
}

// Network is a fully specified RET network: chromophores, species and the
// Förster radii between species (R0[donor][acceptor], nm; 0 disables
// transfer for that pair).
type Network struct {
	Kinds         []Kind
	Chromophores  []Chromophore
	R0            [][]float64
	rates         [][]float64 // cached pairwise transfer rates
	totalTransfer []float64   // cached per-chromophore total outgoing transfer
}

// Validate reports structural errors.
func (n *Network) Validate() error {
	if len(n.Kinds) == 0 || len(n.Chromophores) == 0 {
		return fmt.Errorf("forster: empty network")
	}
	if len(n.R0) != len(n.Kinds) {
		return fmt.Errorf("forster: R0 must be KxK for K kinds")
	}
	hasInput, hasDetected := false, false
	for _, row := range n.R0 {
		if len(row) != len(n.Kinds) {
			return fmt.Errorf("forster: R0 must be square")
		}
	}
	for i, k := range n.Kinds {
		if k.EmitRate < 0 || k.LossRate < 0 || k.EmitRate+k.LossRate <= 0 {
			return fmt.Errorf("forster: kind %d needs a positive decay rate", i)
		}
		if k.Input {
			hasInput = true
		}
		if k.Detected {
			hasDetected = true
		}
	}
	for i, c := range n.Chromophores {
		if c.Kind < 0 || c.Kind >= len(n.Kinds) {
			return fmt.Errorf("forster: chromophore %d has unknown kind %d", i, c.Kind)
		}
	}
	if !hasInput || !hasDetected {
		return fmt.Errorf("forster: need at least one input and one detected kind")
	}
	return nil
}

// prepare caches the pairwise Förster transfer rates.
func (n *Network) prepare() error {
	if err := n.Validate(); err != nil {
		return err
	}
	m := len(n.Chromophores)
	n.rates = make([][]float64, m)
	n.totalTransfer = make([]float64, m)
	for i := 0; i < m; i++ {
		n.rates[i] = make([]float64, m)
		ci := n.Chromophores[i]
		kd := n.Kinds[ci.Kind]
		base := kd.EmitRate + kd.LossRate // donor intrinsic decay
		for j := 0; j < m; j++ {
			if i == j {
				continue
			}
			cj := n.Chromophores[j]
			r0 := n.R0[ci.Kind][cj.Kind]
			if r0 <= 0 {
				continue
			}
			d := dist(ci.Pos, cj.Pos)
			if d <= 0 {
				return fmt.Errorf("forster: chromophores %d and %d coincide", i, j)
			}
			ratio := r0 / d
			k := base * ratio * ratio * ratio * ratio * ratio * ratio
			n.rates[i][j] = k
			n.totalTransfer[i] += k
		}
	}
	return nil
}

func dist(a, b [3]float64) float64 {
	dx, dy, dz := a[0]-b[0], a[1]-b[1], a[2]-b[2]
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// Outcome classifies the fate of one exciton.
type Outcome int

const (
	// Detected: emitted by a Detected-kind chromophore (SPAD photon).
	Detected Outcome = iota
	// LostPhoton: emitted by a non-detected species (wrong band).
	LostPhoton
	// Quenched: decayed non-radiatively.
	Quenched
)

// Transport simulates one exciton injected on chromophore `start`,
// returning its fate and the elapsed time (ns).
func (n *Network) Transport(start int, src rng.Source) (Outcome, float64) {
	if n.rates == nil {
		if err := n.prepare(); err != nil {
			panic(err)
		}
	}
	cur := start
	var t float64
	for hop := 0; ; hop++ {
		if hop > 10000 {
			panic("forster: exciton failed to decay (rate configuration broken)")
		}
		k := n.Kinds[n.Chromophores[cur].Kind]
		total := k.EmitRate + k.LossRate + n.totalTransfer[cur]
		t += rng.Exponential(src, total)
		u := rng.Float64(src) * total
		switch {
		case u < k.EmitRate:
			if k.Detected {
				return Detected, t
			}
			return LostPhoton, t
		case u < k.EmitRate+k.LossRate:
			return Quenched, t
		}
		// Förster hop: pick the destination proportionally.
		u -= k.EmitRate + k.LossRate
		for j, kj := range n.rates[cur] {
			if kj == 0 {
				continue
			}
			if u < kj {
				cur = j
				break
			}
			u -= kj
		}
	}
}

// TransferEfficiency estimates, by Monte Carlo, the probability that an
// exciton starting on `start` produces a detected photon.
func (n *Network) TransferEfficiency(start, trials int, src rng.Source) float64 {
	hits := 0
	for i := 0; i < trials; i++ {
		if out, _ := n.Transport(start, src); out == Detected {
			hits++
		}
	}
	return float64(hits) / float64(trials)
}

// InputIndices returns the chromophores that absorb pump light.
func (n *Network) InputIndices() []int {
	var idx []int
	for i, c := range n.Chromophores {
		if n.Kinds[c.Kind].Input {
			idx = append(idx, i)
		}
	}
	return idx
}

// PairEfficiencyTheory returns the closed-form Förster transfer efficiency
// for an isolated donor-acceptor pair at distance r:
// E = 1 / (1 + (r/R0)^6). Used to validate the simulator.
func PairEfficiencyTheory(r, r0 float64) float64 {
	x := r / r0
	return 1 / (1 + x*x*x*x*x*x)
}
