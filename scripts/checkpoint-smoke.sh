#!/usr/bin/env bash
# Checkpoint kill/resume smoke (DESIGN.md §14): run rsu-stereo uninterrupted
# for reference, re-run the identical job with -checkpoint and SIGKILL the
# process mid-solve — the harshest interruption, no cleanup handler runs —
# then resume from the surviving snapshot and require the resumed disparity
# map to be byte-identical to the reference. The binary is built with -race
# so the periodic capture path is also exercised under the race detector.
#
# Usage: scripts/checkpoint-smoke.sh   (from the repo root; used by
#        `make checkpoint-smoke` and CI)
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

echo "== building race-enabled rsu-stereo"
go build -race -o "$workdir/rsu-stereo" ./cmd/rsu-stereo

# One job, three runs. 150 sweeps at a 5-sweep checkpoint cadence leaves a
# long window between the first snapshot and completion to land the SIGKILL.
args=(-dataset teddy -scale 1 -iters 150 -sampler new -seed 7 -workers 2)
ckpt="$workdir/run.ckpt"

echo "== reference run (uninterrupted)"
"$workdir/rsu-stereo" "${args[@]}" -out "$workdir/ref" >/dev/null

echo "== checkpointed run, SIGKILL after the first snapshot"
"$workdir/rsu-stereo" "${args[@]}" -out "$workdir/res" \
  -checkpoint "$ckpt" -checkpoint-every 5 >/dev/null &
pid=$!
for _ in $(seq 1 600); do
  [ -f "$ckpt" ] && break
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "FAIL: run finished before any checkpoint appeared (raise -iters)" >&2
    exit 1
  fi
  sleep 0.05
done
if [ ! -f "$ckpt" ]; then
  echo "FAIL: no checkpoint within 30s" >&2
  kill -KILL "$pid" 2>/dev/null || true
  exit 1
fi
kill -KILL "$pid"
wait "$pid" 2>/dev/null || true
if [ ! -f "$ckpt" ]; then
  echo "FAIL: checkpoint file missing after SIGKILL" >&2
  exit 1
fi

echo "== resumed run"
"$workdir/rsu-stereo" "${args[@]}" -out "$workdir/res" \
  -checkpoint "$ckpt" -resume

echo "== comparing disparity maps"
if ! cmp "$workdir/ref/teddy_disparity.pgm" "$workdir/res/teddy_disparity.pgm"; then
  echo "FAIL: resumed disparity map differs from the uninterrupted reference" >&2
  exit 1
fi
if [ -f "$ckpt" ]; then
  echo "FAIL: snapshot not removed after the successful resume" >&2
  exit 1
fi
echo "OK: kill/resume output is byte-identical to the uninterrupted run"
