module rsu

go 1.24
