// Denoise example: a fourth MRF application built directly on the public
// MRF + sampler API, demonstrating the "wider application domain" the
// paper's future-work section calls for. Labels are 16 quantized gray
// levels; the data term pulls toward the noisy observation and the
// absolute-distance smoothness prior removes the noise.
//
// Run with: go run ./examples/denoise
// PGM outputs land in examples/denoise/out/.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"rsu/internal/core"
	"rsu/internal/img"
	"rsu/internal/mrf"
	"rsu/internal/rng"
	"rsu/internal/synth"
)

const levels = 16 // gray levels = MRF labels

func main() {
	log.SetFlags(0)
	// Build a clean synthetic image and add heavy noise.
	scene := synth.Segments("denoise", 96, 64, 5, 0, 7)
	clean := scene.Image.Clone()
	noisy := clean.Clone()
	src := rng.NewXoshiro256(99)
	for i := range noisy.Pix {
		noisy.Pix[i] += (rng.Float64(src) - 0.5) * 120
	}
	noisy.Clamp255()

	prob := &mrf.Problem{
		W: noisy.W, H: noisy.H, Labels: levels,
		Singleton: func(x, y, l int) float64 {
			// Truncated absolute deviation from the noisy observation.
			d := math.Abs(noisy.At(x, y) - levelToGray(l))
			if d > 80 {
				d = 80
			}
			return d
		},
		PairWeight:   10,
		Dist:         mrf.Absolute,
		TruncateDist: 4,
	}
	sched := mrf.Schedule{T0: 24, Alpha: 0.97, Iterations: 150}

	outDir := filepath.Join("examples", "denoise", "out")
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	save(outDir, "clean.pgm", clean)
	save(outDir, "noisy.pgm", noisy)

	fmt.Printf("denoising %dx%d with %d gray levels\n", noisy.W, noisy.H, levels)
	fmt.Printf("noisy input PSNR: %.2f dB\n\n", psnr(clean, noisy))
	for _, cand := range []struct {
		name string
		s    core.LabelSampler
	}{
		{"software", core.NewSoftwareSampler(rng.NewXoshiro256(1))},
		{"new-RSUG", core.MustUnit(core.NewRSUG(), rng.NewXoshiro256(2), true)},
	} {
		lab, err := mrf.Solve(prob, cand.s, sched, mrf.SolveOptions{})
		if err != nil {
			log.Fatal(err)
		}
		den := img.NewGray(noisy.W, noisy.H)
		for i, l := range lab.L {
			den.Pix[i] = levelToGray(l)
		}
		fmt.Printf("%-10s denoised PSNR: %.2f dB\n", cand.name, psnr(clean, den))
		save(outDir, "denoised_"+cand.name+".pgm", den)
	}
	fmt.Printf("\nimages written to %s\n", outDir)
}

func levelToGray(l int) float64 { return float64(l) * 255 / (levels - 1) }

func psnr(a, b *img.Gray) float64 {
	var mse float64
	for i := range a.Pix {
		d := a.Pix[i] - b.Pix[i]
		mse += d * d
	}
	mse /= float64(len(a.Pix))
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}

func save(dir, name string, g *img.Gray) {
	if err := img.SavePGM(filepath.Join(dir, name), g); err != nil {
		log.Fatal(err)
	}
}
