// Motion-estimation example: optical flow over a 7x7 search window (49
// motion labels) on a synthetic frame pair, the workload where the original
// RSU-G showed its largest GPU speedups (16x).
//
// Run with: go run ./examples/motion
package main

import (
	"fmt"
	"log"

	"rsu/internal/apps/flow"
	"rsu/internal/core"
	"rsu/internal/rng"
	"rsu/internal/synth"
)

func main() {
	log.SetFlags(0)
	pair := synth.RubberWhale(1)
	fmt.Printf("dataset %s: %dx%d, window radius %d (%d labels)\n\n",
		pair.Name, pair.Frame0.W, pair.Frame0.H, pair.Radius, pair.LabelCount())

	params := flow.DefaultParams()
	for _, cand := range []struct {
		name string
		s    core.LabelSampler
	}{
		{"software", core.NewSoftwareSampler(rng.NewXoshiro256(1))},
		{"new-RSUG", core.MustUnit(core.NewRSUG(), rng.NewXoshiro256(2), true)},
	} {
		res, err := flow.Solve(pair, cand.s, params)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s average end-point error %.3f px\n", cand.name, res.EPE)
	}
	fmt.Println("\nthe new RSU-G matches software quality on 2-D motion labels,")
	fmt.Println("using the squared vector distance its energy stage supports")
}
