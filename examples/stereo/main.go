// Stereo example: depth from a synthetic rectified pair via MCMC MRF
// inference, comparing the software Gibbs sampler with the new RSU-G and
// the previously proposed RSU-G — the paper's running example.
//
// Run with: go run ./examples/stereo
// PGM outputs land in examples/stereo/out/.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"rsu/internal/apps/stereo"
	"rsu/internal/core"
	"rsu/internal/img"
	"rsu/internal/rng"
	"rsu/internal/synth"
)

func main() {
	log.SetFlags(0)
	pair := synth.Teddy(1) // 56 disparity labels, like Middlebury teddy
	fmt.Printf("dataset %s: %dx%d, %d disparity labels\n\n",
		pair.Name, pair.Left.W, pair.Left.H, pair.Labels)

	params := stereo.DefaultParams()
	outDir := filepath.Join("examples", "stereo", "out")
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	samplers := []struct {
		name string
		s    core.LabelSampler
	}{
		{"software", core.NewSoftwareSampler(rng.NewXoshiro256(1))},
		{"new-RSUG", core.MustUnit(core.NewRSUG(), rng.NewXoshiro256(2), true)},
		{"prev-RSUG", core.MustUnit(core.PrevRSUG(), rng.NewXoshiro256(3), true)},
	}
	for _, cand := range samplers {
		res, err := stereo.Solve(pair, cand.s, params)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s BP %5.1f%%  RMS %5.2f\n", cand.name, res.BP, res.RMS)
		path := filepath.Join(outDir, "disparity_"+cand.name+".pgm")
		if err := img.SavePGM(path, res.Disparity.ToGray(pair.Labels-1)); err != nil {
			log.Fatal(err)
		}
	}
	if err := img.SavePGM(filepath.Join(outDir, "groundtruth.pgm"),
		pair.GT.ToGray(pair.Labels-1)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndisparity maps written to %s (light = close)\n", outDir)
}
