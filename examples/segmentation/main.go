// Segmentation example: Potts-model MCMC segmentation of synthetic images
// into 2-8 segments, scored with the four BISIP metrics the paper reports
// (VoI, PRI, GCE, BDE).
//
// Run with: go run ./examples/segmentation
package main

import (
	"fmt"
	"log"

	"rsu/internal/apps/segment"
	"rsu/internal/core"
	"rsu/internal/rng"
	"rsu/internal/synth"
)

func main() {
	log.SetFlags(0)
	params := segment.DefaultParams()
	fmt.Println("image        k   sampler     VoI     PRI     GCE     BDE")
	for _, k := range []int{2, 4, 6, 8} {
		scene := synth.BSDLike(k, k, 1) // a different image per segment count
		for _, cand := range []struct {
			name string
			s    core.LabelSampler
		}{
			{"software", core.NewSoftwareSampler(rng.NewXoshiro256(uint64(k)))},
			{"new-RSUG", core.MustUnit(core.NewRSUG(), rng.NewXoshiro256(uint64(k)+100), true)},
		} {
			res, err := segment.Solve(scene, cand.s, params)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %3d   %-9s %6.3f %7.3f %7.3f %7.2f\n",
				scene.Name, k, cand.name,
				res.Scores.VoI, res.Scores.PRI, res.Scores.GCE, res.Scores.BDE)
		}
	}
}
