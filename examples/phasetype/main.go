// Phase-type example: approximate a deterministic delay by cascading RSU-G
// sampling windows (Erlang-k on the RET substrate) — the paper's final
// future-work item. The coefficient of variation shrinks as 1/sqrt(k).
//
// Run with: go run ./examples/phasetype
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"rsu/internal/core"
	"rsu/internal/phase"
	"rsu/internal/rng"
)

func main() {
	log.SetFlags(0)
	cfg := core.NewRSUG()
	fmt.Println("Erlang-k cascades of code-4 RSU-G windows (time in bins):")
	fmt.Printf("%-8s %12s %12s %10s %10s  %s\n", "stages", "ideal mean", "meas. mean", "ideal CV", "meas. CV", "histogram of samples")
	for _, k := range []int{1, 2, 4, 8, 16} {
		codes := make([]int, k)
		for i := range codes {
			codes[i] = 4
		}
		s, err := phase.NewRETSampler(cfg, codes, rng.NewXoshiro256(uint64(k)))
		if err != nil {
			log.Fatal(err)
		}
		im, iv := s.IdealMoments()
		mm, mv := s.Measure(100000)

		// Tiny inline histogram around the mean.
		const bins = 24
		hist := make([]int, bins)
		maxT := im * 2.5
		hi := 0
		for i := 0; i < 20000; i++ {
			v := s.Sample()
			b := int(v / maxT * bins)
			if b >= bins {
				b = bins - 1
			}
			hist[b]++
			if hist[b] > hi {
				hi = hist[b]
			}
		}
		ramp := " .:-=+*#"
		var bar strings.Builder
		for _, c := range hist {
			bar.WriteByte(ramp[c*(len(ramp)-1)/hi])
		}
		fmt.Printf("%-8d %12.2f %12.2f %10.3f %10.3f  |%s|\n",
			k, im, mm, math.Sqrt(iv)/im, math.Sqrt(mv)/mm, bar.String())
	}
	fmt.Println("\nthe distribution sharpens toward a deterministic delay as stages grow;")
	fmt.Println("truncation pulls the measured mean slightly below the ideal cascade")
}
