// Ising example: a Boltzmann-machine-class workload (the paper's intro
// motivation) on the RSU-G substrate. Sweeps temperature through the exact
// critical point and prints magnetization bars for the software sampler,
// the 4-bit new RSU-G, and a 7-bit-lambda variant — exposing where the
// probability cut-off freezes the dynamics.
//
// Run with: go run ./examples/ising
//
// Pass -shards RxC to run each arm on the domain-decomposed tiled solver
// (one RNG stream per tile, DESIGN.md §15) — the physics is unchanged, the
// sweeps just execute tile-parallel.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"rsu/internal/apps/ising"
	"rsu/internal/core"
	"rsu/internal/rng"
	"rsu/internal/runopt"
)

func bar(m float64) string {
	n := int(m * 30)
	return strings.Repeat("#", n) + strings.Repeat(".", 30-n)
}

func main() {
	log.SetFlags(0)
	var (
		n      = flag.Int("n", 24, "lattice side length")
		shardf runopt.ShardFlags
	)
	shardf.Register(flag.CommandLine)
	flag.Parse()

	model := ising.Model{N: *n, J: 16}
	var err error
	if model.Shards, err = shardf.Geometry(); err != nil {
		log.Fatal(err)
	}
	cfg7 := core.NewRSUG()
	cfg7.LambdaBits = 7
	cfg7.Mode = core.ConvertScaledCutoff
	cfg7.TimeBits = 0
	cfg7.Truncation = 0

	// Each arm builds its samplers through a per-stream factory so the tiled
	// solver can hand every tile its own RNG stream; unsharded runs draw the
	// whole lattice from stream 0, matching the previous single-sampler setup.
	arms := []struct {
		name    string
		factory func(stream int) core.LabelSampler
	}{
		{"software", core.StreamFactory(1, func(src rng.Source) core.LabelSampler {
			return core.NewSoftwareSampler(src)
		})},
		{"RSU-G L4", core.StreamFactory(2, func(src rng.Source) core.LabelSampler {
			return core.MustUnit(core.NewRSUG(), src, true)
		})},
		{"RSU-G L7", core.StreamFactory(3, func(src rng.Source) core.LabelSampler {
			return core.MustUnit(cfg7, src, true)
		})},
	}

	fmt.Printf("2-D Ising (%dx%d), exact Tc = %.3f J\n\n", model.N, model.N, ising.CriticalTemperature)
	fmt.Printf("%-6s %-34s %-34s %s\n", "T", "software |m|", "RSU-G L4 |m|", "RSU-G L7 |m|")
	for _, T := range []float64{1.6, 2.0, 2.4, 2.8, 3.2, 4.0, 4.8} {
		mags := make([]float64, len(arms))
		for i, arm := range arms {
			m := model
			m.SamplerFactory = arm.factory
			m.Workers = 1
			obs, err := m.Run(nil, T, 120, 100, 7)
			if err != nil {
				log.Fatal(err)
			}
			mags[i] = obs.Magnetization
		}
		mark := " "
		if T > ising.CriticalTemperature && T-0.4 <= ising.CriticalTemperature {
			mark = "*"
		}
		fmt.Printf("%-5.1f%s |%s| |%s| |%s|\n", T, mark,
			bar(mags[0]), bar(mags[1]), bar(mags[2]))
	}
	fmt.Println("\n* = first row above Tc. The L4 probability cut-off freezes the ordered")
	fmt.Println("phase up to T ≈ 3.85 J; 7 lambda bits restore the true transition.")
}
