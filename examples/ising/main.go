// Ising example: a Boltzmann-machine-class workload (the paper's intro
// motivation) on the RSU-G substrate. Sweeps temperature through the exact
// critical point and prints magnetization bars for the software sampler,
// the 4-bit new RSU-G, and a 7-bit-lambda variant — exposing where the
// probability cut-off freezes the dynamics.
//
// Run with: go run ./examples/ising
package main

import (
	"fmt"
	"log"
	"strings"

	"rsu/internal/apps/ising"
	"rsu/internal/core"
	"rsu/internal/rng"
)

func bar(m float64) string {
	n := int(m * 30)
	return strings.Repeat("#", n) + strings.Repeat(".", 30-n)
}

func main() {
	log.SetFlags(0)
	model := ising.Model{N: 24, J: 16}
	cfg7 := core.NewRSUG()
	cfg7.LambdaBits = 7
	cfg7.Mode = core.ConvertScaledCutoff
	cfg7.TimeBits = 0
	cfg7.Truncation = 0

	fmt.Printf("2-D Ising (%dx%d), exact Tc = %.3f J\n\n", model.N, model.N, ising.CriticalTemperature)
	fmt.Printf("%-6s %-34s %-34s %s\n", "T", "software |m|", "RSU-G L4 |m|", "RSU-G L7 |m|")
	for _, T := range []float64{1.6, 2.0, 2.4, 2.8, 3.2, 4.0, 4.8} {
		sw, err := model.Run(core.NewSoftwareSampler(rng.NewXoshiro256(1)), T, 120, 100, 7)
		if err != nil {
			log.Fatal(err)
		}
		l4, err := model.Run(core.MustUnit(core.NewRSUG(), rng.NewXoshiro256(2), true), T, 120, 100, 7)
		if err != nil {
			log.Fatal(err)
		}
		l7, err := model.Run(core.MustUnit(cfg7, rng.NewXoshiro256(3), true), T, 120, 100, 7)
		if err != nil {
			log.Fatal(err)
		}
		mark := " "
		if T > ising.CriticalTemperature && T-0.4 <= ising.CriticalTemperature {
			mark = "*"
		}
		fmt.Printf("%-5.1f%s |%s| |%s| |%s|\n", T, mark,
			bar(sw.Magnetization), bar(l4.Magnetization), bar(l7.Magnetization))
	}
	fmt.Println("\n* = first row above Tc. The L4 probability cut-off freezes the ordered")
	fmt.Println("phase up to T ≈ 3.85 J; 7 lambda bits restore the true transition.")
}
