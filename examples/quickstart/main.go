// Quickstart: build an RSU-G sampling unit, parameterize a distribution
// with label energies, and draw samples — the molecular-optical equivalent
// of Gibbs-sampling a single MRF variable.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"math"

	"rsu/internal/core"
	"rsu/internal/rng"
)

func main() {
	// The paper's proposed design point: 8-bit energy, 4-bit lambda with
	// decay-rate scaling + probability cut-off + 2^n codes, 5-bit time
	// measurement, truncation 0.5.
	cfg := core.NewRSUG()
	unit := core.MustUnit(cfg, rng.NewXoshiro256(42), true)

	// Energies for four candidate labels (lower energy = more likely).
	energies := []float64{0, 20, 40, 80}
	temperature := 30.0
	core.MustSetTemperature(unit, temperature)

	// The software baseline samples the exact Boltzmann distribution.
	software := core.NewSoftwareSampler(rng.NewXoshiro256(43))
	core.MustSetTemperature(software, temperature)

	const draws = 200000
	rsu := make([]int, len(energies))
	ref := make([]int, len(energies))
	for i := 0; i < draws; i++ {
		rsu[core.MustSample(unit, energies, 0)]++
		ref[core.MustSample(software, energies, 0)]++
	}

	fmt.Println("label   energy   P(exact)   P(software)   P(RSU-G)")
	var z float64
	for _, e := range energies {
		z += math.Exp(-e / temperature)
	}
	for l, e := range energies {
		exact := math.Exp(-e/temperature) / z
		fmt.Printf("%5d %8.0f %10.4f %13.4f %10.4f\n",
			l, e, exact, float64(ref[l])/draws, float64(rsu[l])/draws)
	}

	st := unit.Stats()
	fmt.Printf("\nRSU-G internals over %d variable updates:\n", st.Evaluations)
	fmt.Printf("  label evaluations: %d\n", st.LabelEvals)
	fmt.Printf("  cut-off labels:    %d (probability too small to matter)\n", st.Cutoffs)
	fmt.Printf("  truncated samples: %d (TTF beyond the detection window)\n", st.Truncated)
	fmt.Printf("  tie-broken picks:  %d\n", st.Ties)
}
