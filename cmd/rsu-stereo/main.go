// Command rsu-stereo solves one synthetic stereo instance with a selectable
// sampler and writes the disparity maps as PGM files.
//
// Usage:
//
//	rsu-stereo -dataset teddy -sampler new -out out/
//	rsu-stereo -dataset poster -sampler software -iters 300
//	rsu-stereo -timeout 30s -runlog run.jsonl -pprof cpu.out
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"rsu/internal/apps/stereo"
	"rsu/internal/core"
	"rsu/internal/img"
	"rsu/internal/runopt"
	"rsu/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rsu-stereo: ")
	var (
		dataset = flag.String("dataset", "teddy", "teddy | poster | art")
		sampler = flag.String("sampler", "new", "software | new | prev")
		seed    = flag.Uint64("seed", 1, "random seed")
		scale   = flag.Int("scale", 1, "dataset scale factor")
		iters   = flag.Int("iters", 0, "override annealing iterations (0 = default 500)")
		workers = flag.Int("workers", 0, "solver workers: 0 = GOMAXPROCS, 1 = serial")
		out     = flag.String("out", "", "directory for PGM outputs")
		ropt    runopt.Flags
		uqf     runopt.UQFlags
		faultf  runopt.FaultFlags
		ckptf   runopt.CheckpointFlags
		shardf  runopt.ShardFlags
	)
	ropt.Register(flag.CommandLine)
	uqf.Register(flag.CommandLine)
	faultf.Register(flag.CommandLine)
	ckptf.Register(flag.CommandLine)
	shardf.Register(flag.CommandLine)
	flag.Parse()

	var pair *synth.StereoPair
	switch *dataset {
	case "teddy":
		pair = synth.Teddy(*scale)
	case "poster":
		pair = synth.Poster(*scale)
	case "art":
		pair = synth.Art(*scale)
	default:
		log.Fatalf("unknown dataset %q", *dataset)
	}

	p := stereo.DefaultParams()
	if *iters > 0 {
		p.Schedule.Iterations = *iters
	}
	ropt.Apply(&p.Schedule)
	p.UQ = uqf.Options()
	var err error
	if p.Faults, err = faultf.Config(*sampler, *seed); err != nil {
		log.Fatal(err)
	}
	if p.Checkpoint, err = ckptf.Plan("stereo", *sampler, *seed); err != nil {
		log.Fatal(err)
	}

	build, err := core.SamplerBuilder(*sampler)
	if err != nil {
		log.Fatal(err)
	}
	p.SamplerFactory = core.StreamFactory(*seed, build)
	p.Workers = *workers
	if p.Shards, err = shardf.Geometry(); err != nil {
		log.Fatal(err)
	}

	rt, err := ropt.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	p.Ctx = rt.Context()
	p.OnSweep = rt.Hook(*dataset, nil)

	res, err := stereo.Solve(pair, nil, p)
	runopt.ReportResume(os.Stdout, p.Checkpoint)
	if err != nil {
		rt.Close()
		log.Fatal(err)
	}
	fmt.Printf("%s (%dx%d, %d labels) with %s sampler: BP %.1f%%  RMS %.2f\n",
		pair.Name, pair.Left.W, pair.Left.H, pair.Labels, *sampler, res.BP, res.RMS)
	if err := runopt.ReportUQ(os.Stdout, res.UQ, res.Disparity, *out, pair.Name); err != nil {
		log.Fatal(err)
	}
	runopt.ReportFaults(os.Stdout, res.Faults)

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
		max := pair.Labels - 1
		for name, g := range map[string]*img.Gray{
			"left.pgm":      pair.Left,
			"right.pgm":     pair.Right,
			"gt.pgm":        pair.GT.ToGray(max),
			"disparity.pgm": res.Disparity.ToGray(max),
		} {
			path := filepath.Join(*out, pair.Name+"_"+name)
			if err := img.SavePGM(path, g); err != nil {
				log.Fatal(err)
			}
			fmt.Println("wrote", path)
		}
	}
}
