// Command rsu-accel explores the discrete RSU-G accelerator design space:
// speedup over the GPU baseline as a function of unit count and memory
// bandwidth, for the paper's two accelerator workloads.
//
// Usage:
//
//	rsu-accel                      # paper configuration (336 units, 336 GB/s)
//	rsu-accel -units 672 -bw 672   # scaled machine
//	rsu-accel -sweep               # unit-count scaling table with cycle-sim check
package main

import (
	"flag"
	"fmt"

	"rsu/internal/accel"
	"rsu/internal/rsim"
	"rsu/internal/viz"
)

func main() {
	var (
		units = flag.Int("units", 336, "RSU-G units in the accelerator")
		bw    = flag.Float64("bw", 336, "memory bandwidth in GB/s")
		sweep = flag.Bool("sweep", false, "print a unit-count scaling sweep")
	)
	flag.Parse()

	m := accel.DefaultMachine()
	m.Units = *units
	m.MemBWBytesPerSec = *bw * 1e9

	apps := []accel.AppProfile{accel.Segmentation5(), accel.Motion49()}
	fmt.Printf("machine: %d units @ %.0f GHz, %.0f GB/s\n\n", m.Units, m.ClockHz/1e9, m.MemBWBytesPerSec/1e9)
	fmt.Printf("%-14s %10s %12s %14s %12s\n", "application", "labels", "aug speedup", "disc speedup", "BW wall")
	for _, p := range apps {
		fmt.Printf("%-14s %10d %11.1fx %13.1fx %9d units\n",
			p.Name, p.Labels, m.AugSpeedup(p), m.DiscreteSpeedup(p), m.SaturationUnits(p))
	}

	fmt.Println("\ncycle-level cross-check (simulated vs analytic cycles/pixel):")
	for _, p := range apps {
		cfg := rsim.AccelConfig{
			Units:             m.Units,
			Labels:            p.Labels,
			BytesPerPixel:     p.BytesPerPixel,
			PortBytesPerCycle: m.MemBWBytesPerSec / m.ClockHz,
		}
		st, err := rsim.SimulateAccelSweep(cfg, 100000)
		if err != nil {
			fmt.Println("  error:", err)
			continue
		}
		fmt.Printf("  %-14s sim %.4f vs analytic %.4f (mem waits %d, unit waits %d)\n",
			p.Name, st.CyclesPerPixel, cfg.AnalyticCyclesPerPixel(), st.MemWaits, st.UnitWaits)
	}

	if *sweep {
		counts := []int{16, 32, 64, 128, 168, 256, 336, 512, 672, 1024}
		for _, p := range apps {
			fmt.Printf("\nscaling sweep — %s:\n", p.Name)
			labels := make([]string, len(counts))
			vals := make([]float64, len(counts))
			for i, pt := range m.ScalingSweep(p, counts) {
				tag := ""
				if pt.MemoryBound {
					tag = " (mem bound)"
				}
				labels[i] = fmt.Sprintf("%d units%s", pt.Units, tag)
				vals[i] = pt.Speedup
			}
			fmt.Print(viz.Bars(labels, vals, 40))
		}
	}
}
