// Command rsu-flow solves one synthetic motion-estimation instance with a
// selectable sampler and optionally writes the flow magnitude as PGM.
//
// Usage:
//
//	rsu-flow -dataset venus -sampler new
//	rsu-flow -dataset rubberwhale -sampler software -out out/
//	rsu-flow -timeout 1m -runlog run.jsonl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"rsu/internal/apps/flow"
	"rsu/internal/core"
	"rsu/internal/img"
	"rsu/internal/runopt"
	"rsu/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rsu-flow: ")
	var (
		dataset = flag.String("dataset", "venus", "venus | rubberwhale | dimetrodon")
		sampler = flag.String("sampler", "new", "software | new | prev")
		seed    = flag.Uint64("seed", 1, "random seed")
		scale   = flag.Int("scale", 1, "dataset scale factor")
		iters   = flag.Int("iters", 0, "override annealing iterations (0 = default 300)")
		workers = flag.Int("workers", 0, "solver workers: 0 = GOMAXPROCS, 1 = serial")
		out     = flag.String("out", "", "directory for PGM outputs")
		ropt    runopt.Flags
		uqf     runopt.UQFlags
		faultf  runopt.FaultFlags
		ckptf   runopt.CheckpointFlags
		shardf  runopt.ShardFlags
	)
	ropt.Register(flag.CommandLine)
	uqf.Register(flag.CommandLine)
	faultf.Register(flag.CommandLine)
	ckptf.Register(flag.CommandLine)
	shardf.Register(flag.CommandLine)
	flag.Parse()

	var pair *synth.FlowPair
	switch *dataset {
	case "venus":
		pair = synth.Venus(*scale)
	case "rubberwhale":
		pair = synth.RubberWhale(*scale)
	case "dimetrodon":
		pair = synth.Dimetrodon(*scale)
	default:
		log.Fatalf("unknown dataset %q", *dataset)
	}

	p := flow.DefaultParams()
	if *iters > 0 {
		p.Schedule.Iterations = *iters
	}
	ropt.Apply(&p.Schedule)
	p.UQ = uqf.Options()
	var err error
	if p.Faults, err = faultf.Config(*sampler, *seed); err != nil {
		log.Fatal(err)
	}
	if p.Checkpoint, err = ckptf.Plan("flow", *sampler, *seed); err != nil {
		log.Fatal(err)
	}

	build, err := core.SamplerBuilder(*sampler)
	if err != nil {
		log.Fatal(err)
	}
	p.SamplerFactory = core.StreamFactory(*seed, build)
	p.Workers = *workers
	if p.Shards, err = shardf.Geometry(); err != nil {
		log.Fatal(err)
	}

	rt, err := ropt.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	p.Ctx = rt.Context()
	p.OnSweep = rt.Hook(*dataset, nil)

	res, err := flow.Solve(pair, nil, p)
	runopt.ReportResume(os.Stdout, p.Checkpoint)
	if err != nil {
		rt.Close()
		log.Fatal(err)
	}
	fmt.Printf("%s (%dx%d, %d labels) with %s sampler: EPE %.3f px\n",
		pair.Name, pair.Frame0.W, pair.Frame0.H, pair.LabelCount(), *sampler, res.EPE)
	if err := runopt.ReportUQ(os.Stdout, res.UQ, res.Labels, *out, pair.Name); err != nil {
		log.Fatal(err)
	}
	runopt.ReportFaults(os.Stdout, res.Faults)

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
		for name, g := range map[string]*img.Gray{
			"frame0.pgm": pair.Frame0,
			"frame1.pgm": pair.Frame1,
			"flow.pgm":   flow.FlowFieldToGray(res.Labels, pair.Radius),
		} {
			path := filepath.Join(*out, pair.Name+"_"+name)
			if err := img.SavePGM(path, g); err != nil {
				log.Fatal(err)
			}
			fmt.Println("wrote", path)
		}
	}
}
