// Command rsu-segment segments one synthetic image (or a user-supplied PGM)
// with a selectable sampler and reports the four BISIP quality metrics.
//
// Usage:
//
//	rsu-segment -image 3 -k 6 -sampler new -out out/
//	rsu-segment -pgm photo.pgm -k 4 -sampler software
//	rsu-segment -timeout 30s -runlog -
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"rsu/internal/apps/segment"
	"rsu/internal/core"
	"rsu/internal/img"
	"rsu/internal/runopt"
	"rsu/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rsu-segment: ")
	var (
		index   = flag.Int("image", 0, "synthetic image index in [0,30)")
		pgmPath = flag.String("pgm", "", "segment this PGM instead of a synthetic image (no quality metrics)")
		k       = flag.Int("k", 4, "number of segments (2-8 in the paper)")
		sampler = flag.String("sampler", "new", "software | new | prev")
		seed    = flag.Uint64("seed", 1, "random seed")
		scale   = flag.Int("scale", 1, "synthetic dataset scale factor")
		iters   = flag.Int("iters", 0, "override Gibbs iterations (0 = default 30)")
		workers = flag.Int("workers", 0, "solver workers: 0 = GOMAXPROCS, 1 = serial")
		out     = flag.String("out", "", "directory for PGM outputs")
		ropt    runopt.Flags
		uqf     runopt.UQFlags
		faultf  runopt.FaultFlags
		ckptf   runopt.CheckpointFlags
		shardf  runopt.ShardFlags
	)
	ropt.Register(flag.CommandLine)
	uqf.Register(flag.CommandLine)
	faultf.Register(flag.CommandLine)
	ckptf.Register(flag.CommandLine)
	shardf.Register(flag.CommandLine)
	flag.Parse()

	p := segment.DefaultParams()
	if *iters > 0 {
		p.Iterations = *iters
	}
	p.UQ = uqf.Options()
	var err error
	if p.Faults, err = faultf.Config(*sampler, *seed); err != nil {
		log.Fatal(err)
	}
	if p.Checkpoint, err = ckptf.Plan("segment", *sampler, *seed); err != nil {
		log.Fatal(err)
	}

	build, err := core.SamplerBuilder(*sampler)
	if err != nil {
		log.Fatal(err)
	}
	p.SamplerFactory = core.StreamFactory(*seed, build)
	p.Workers = *workers
	if p.Shards, err = shardf.Geometry(); err != nil {
		log.Fatal(err)
	}

	rt, err := ropt.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	p.Ctx = rt.Context()

	var scene *synth.SegScene
	if *pgmPath != "" {
		im, err := img.LoadPGM(*pgmPath)
		if err != nil {
			log.Fatal(err)
		}
		// Wrap the external image; ground truth is unknown, so GT is a
		// flat map and the reported metrics are not meaningful.
		scene = &synth.SegScene{Name: filepath.Base(*pgmPath), Image: im,
			GT: img.NewLabels(im.W, im.H), Segments: *k}
	} else {
		scene = synth.BSDLike(*index, *k, *scale)
	}

	p.OnSweep = rt.Hook(scene.Name, nil)

	res, err := segment.Solve(scene, nil, p)
	runopt.ReportResume(os.Stdout, p.Checkpoint)
	if err != nil {
		rt.Close()
		log.Fatal(err)
	}
	fmt.Printf("%s (%dx%d, k=%d) with %s sampler\n",
		scene.Name, scene.Image.W, scene.Image.H, *k, *sampler)
	if *pgmPath == "" {
		fmt.Printf("  VoI %.3f  PRI %.3f  GCE %.3f  BDE %.2f\n",
			res.Scores.VoI, res.Scores.PRI, res.Scores.GCE, res.Scores.BDE)
	}
	if err := runopt.ReportUQ(os.Stdout, res.UQ, res.Labeling, *out, scene.Name); err != nil {
		log.Fatal(err)
	}
	runopt.ReportFaults(os.Stdout, res.Faults)

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
		for name, g := range map[string]*img.Gray{
			"input.pgm":    scene.Image,
			"segments.pgm": res.Labeling.ToGray(*k - 1),
		} {
			path := filepath.Join(*out, scene.Name+"_"+name)
			if err := img.SavePGM(path, g); err != nil {
				log.Fatal(err)
			}
			fmt.Println("wrote", path)
		}
	}
}
