// Command rsu-verify runs the statistical conformance battery and the
// golden-trace regression checks outside of `go test` — the entry point for
// `make verify` and CI gating.
//
// Usage:
//
//	rsu-verify                       # battery + marginal battery + goldens
//	rsu-verify -samples 100000       # higher-power battery run
//	rsu-verify -replicates 5000      # higher-power marginal battery run
//	rsu-verify -update-golden        # regenerate the golden trace files
//	rsu-verify -skip-battery         # skip the per-draw distribution battery
//	rsu-verify -skip-marginals       # skip the posterior-marginal battery
//	rsu-verify -skip-checkpoint      # skip the checkpoint/resume gate
//	rsu-verify -skip-shards          # skip the sharding-equivalence gates
//	rsu-verify -only-shards          # run only the sharding-equivalence gates
//	rsu-verify -shard-replicates 800 # higher-power sharding chi-square battery
//
// Exit status is non-zero when any battery check fails its
// Bonferroni-corrected threshold or any golden trace drifts.
package main

import (
	"flag"
	"fmt"
	"os"

	"rsu/internal/conformance"
)

func main() {
	var (
		goldenDir   = flag.String("golden", "internal/conformance/testdata/golden", "golden trace directory")
		update      = flag.Bool("update-golden", false, "regenerate golden traces instead of comparing")
		samples     = flag.Int("samples", 30000, "battery samples per (design point, energy vector, kernel)")
		seed        = flag.Uint64("seed", 2026, "battery RNG seed")
		alpha       = flag.Float64("alpha", 1e-3, "battery total false-rejection budget")
		skipBattery = flag.Bool("skip-battery", false, "skip the distribution battery")
		replicates  = flag.Int("replicates", 2000, "marginal-battery replicate chains per (grid, point, solver)")
		skipMarg    = flag.Bool("skip-marginals", false, "skip the posterior-marginal battery")
		skipCkpt    = flag.Bool("skip-checkpoint", false, "skip the checkpoint/resume bit-exactness gate")
		skipShards  = flag.Bool("skip-shards", false, "skip the sharding-equivalence gates")
		onlyShards  = flag.Bool("only-shards", false, "run only the sharding-equivalence gates (make shard-verify)")
		shardReps   = flag.Int("shard-replicates", 400, "sharding chi-square battery replicate chains per arm")
		verbose     = flag.Bool("v", false, "print every battery check")
	)
	flag.Parse()
	if *onlyShards {
		*skipBattery, *skipMarg, *skipCkpt = true, true, true
	}

	failed := false
	if !*skipBattery {
		rep, err := conformance.RunBattery(conformance.DefaultBattery(), conformance.BatteryOptions{
			Samples: *samples, Alpha: *alpha, Seed: *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "rsu-verify:", err)
			os.Exit(2)
		}
		if *verbose {
			for _, c := range rep.Checks {
				status := "ok"
				if c.Skipped {
					status = "skip"
				} else if c.P < rep.Threshold {
					status = "FAIL"
				}
				fmt.Printf("%-4s %-20s %-13s %-15s energies %d  p=%.4g\n",
					status, c.Point, c.Path, c.Kind, c.Energies, c.P)
			}
		}
		for _, f := range rep.Failures() {
			failed = true
			fmt.Fprintf(os.Stderr, "rsu-verify: battery FAIL %s/%s energies %d (%s): p = %.3g < %.3g\n",
				f.Point, f.Kind, f.Energies, f.Path, f.P, rep.Threshold)
		}
		fmt.Printf("battery: %d checks, paths %v, min p = %.4g (threshold %.3g)\n",
			len(rep.Checks), rep.Paths(), rep.MinP(), rep.Threshold)
	}

	if !*skipMarg {
		rep, err := conformance.RunMarginalBattery(
			conformance.DefaultMarginalGrids(), conformance.DefaultMarginalPoints(),
			conformance.MarginalOptions{Replicates: *replicates, Alpha: *alpha, Seed: *seed},
		)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rsu-verify:", err)
			os.Exit(2)
		}
		if *verbose {
			for _, c := range rep.Checks {
				status := "ok"
				if c.Skipped {
					status = "skip"
				} else if c.P < rep.Threshold {
					status = "FAIL"
				}
				fmt.Printf("%-4s %-22s %-13s %-14s %-3s %-10s p=%.4g\n",
					status, c.Point, c.Path, c.Solver, c.Grid, c.Test, c.P)
			}
		}
		for _, f := range rep.Failures() {
			failed = true
			fmt.Fprintf(os.Stderr, "rsu-verify: marginals FAIL %s/%s/%s %s (%s): p = %.3g < %.3g\n",
				f.Point, f.Grid, f.Solver, f.Test, f.Path, f.P, rep.Threshold)
		}
		fmt.Printf("marginals: %d checks, paths %v, min p = %.4g (threshold %.3g)\n",
			len(rep.Checks), rep.Paths(), rep.MinP(), rep.Threshold)
	}

	if *update {
		if err := conformance.UpdateGolden(*goldenDir); err != nil {
			fmt.Fprintln(os.Stderr, "rsu-verify:", err)
			os.Exit(2)
		}
		fmt.Printf("golden: regenerated %d traces in %s\n", len(conformance.Scenarios()), *goldenDir)
	}
	var errs []error
	if !*onlyShards {
		errs = conformance.VerifyGolden(*goldenDir)
		for _, err := range errs {
			failed = true
			fmt.Fprintln(os.Stderr, "rsu-verify:", err)
		}
		if len(errs) == 0 {
			fmt.Printf("golden: %d traces match\n", len(conformance.Scenarios()))
		}

		// The zero-fault invariant: re-run every golden scenario with a
		// zero-rate device-fault injection attached; the traces must not move
		// by a byte (see conformance.VerifyGoldenZeroFault).
		errs = conformance.VerifyGoldenZeroFault(*goldenDir)
		for _, err := range errs {
			failed = true
			fmt.Fprintln(os.Stderr, "rsu-verify:", err)
		}
		if len(errs) == 0 {
			fmt.Printf("golden (zero-fault injection): %d traces match\n", len(conformance.Scenarios()))
		}
	}

	// The bit-exact resume guarantee: interrupt every golden scenario at the
	// schedule midpoint, resume from the snapshot through a full container
	// round trip, and require the spliced trace to match the golden
	// byte-for-byte (see conformance.VerifyCheckpointResume).
	if !*skipCkpt {
		errs = conformance.VerifyCheckpointResume(*goldenDir)
		for _, err := range errs {
			failed = true
			fmt.Fprintln(os.Stderr, "rsu-verify:", err)
		}
		if len(errs) == 0 {
			fmt.Printf("golden (checkpoint resume): %d traces match\n", len(conformance.Scenarios()))
		}
	}

	// The sharding-equivalence gates (DESIGN.md §15): the degenerate 1x1
	// tiling must reproduce the serial goldens byte-for-byte; multi-tile
	// geometries must match the monolithic checkerboard solver in
	// distribution (per-pixel two-sample chi-square, Bonferroni-corrected);
	// and a sharded run interrupted mid-schedule must resume bit-exactly
	// through the version-2 snapshot container.
	if !*skipShards {
		errs = conformance.VerifyShardedGolden(*goldenDir)
		for _, err := range errs {
			failed = true
			fmt.Fprintln(os.Stderr, "rsu-verify:", err)
		}
		if len(errs) == 0 {
			fmt.Printf("sharded golden (1x1 == serial): %d traces match\n", len(conformance.Scenarios()))
		}

		rep, err := conformance.RunShardBattery(conformance.DefaultShardDesigns(), conformance.ShardOptions{
			Replicates: *shardReps, Alpha: *alpha, Seed: *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "rsu-verify:", err)
			os.Exit(2)
		}
		if *verbose {
			for _, c := range rep.Checks {
				status := "ok"
				if c.P < rep.Threshold {
					status = "FAIL"
				}
				fmt.Printf("%-4s %-10s %-14s n=%d  p=%.4g\n", status, c.Design, c.Pixel, c.N, c.P)
			}
		}
		for _, f := range rep.Failures() {
			failed = true
			fmt.Fprintf(os.Stderr, "rsu-verify: sharding FAIL %s %s: p = %.3g < %.3g (n=%d per arm)\n",
				f.Design, f.Pixel, f.P, rep.Threshold, f.N)
		}
		fmt.Printf("sharding battery: %d checks, %d replicates per arm, min p = %.4g (threshold %.3g)\n",
			len(rep.Checks), rep.Replicates, rep.MinP(), rep.Threshold)

		errs = conformance.VerifyShardedCheckpointResume()
		for _, err := range errs {
			failed = true
			fmt.Fprintln(os.Stderr, "rsu-verify:", err)
		}
		if len(errs) == 0 {
			fmt.Println("sharded checkpoint resume: 4 apps splice bit-exactly")
		}
	}

	if failed {
		os.Exit(1)
	}
}
