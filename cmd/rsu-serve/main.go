// Command rsu-serve is the batched-inference HTTP daemon: it accepts
// stereo / flow / segment / ising jobs as JSON, queues them with
// backpressure, and schedules them onto a bounded pool of persistent
// solver workers that share precomputation through the artifact cache
// (see internal/serve and DESIGN.md §10).
//
// Usage:
//
//	rsu-serve -addr :8080 -workers 4 -queue 64
//	curl -s localhost:8080/jobs -d '{"app":"stereo","dataset":"teddy","iterations":50}'
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM starts a graceful drain: readiness flips to 503, accepted
// jobs finish, and after -drain-timeout any still-running solves are
// cancelled at their next sweep boundary. With -checkpoint-dir set, jobs a
// hard drain interrupts persist their solver state there, and the next
// rsu-serve start re-enqueues them, resuming each solve bit-exactly where it
// was cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"rsu/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rsu-serve: ")
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		workers       = flag.Int("workers", 0, "serving workers (concurrent jobs; 0 = GOMAXPROCS)")
		queueCap      = flag.Int("queue", 64, "queued-job capacity (backpressure beyond this)")
		solverWorkers = flag.Int("solver-workers", 1, "default per-job checkerboard-solver workers")
		defTimeout    = flag.Duration("default-timeout", time.Minute, "job timeout when the spec sets none (0 = unbounded)")
		maxTimeout    = flag.Duration("max-timeout", 10*time.Minute, "upper bound on any per-job timeout (0 = no cap)")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight jobs on shutdown")
		ckptDir       = flag.String("checkpoint-dir", "", "directory for drain checkpoints (empty = disabled); snapshots found at startup are re-enqueued and resumed")
		pairCache     = flag.Int("pair-cache", 64, "pairwise-LUT cache capacity (design points)")
		datasetCache  = flag.Int("dataset-cache", 32, "dataset cache capacity (scenes)")
		convCache     = flag.Int("conv-cache", 0, "lambda-conversion table cache capacity (0 = default)")
	)
	flag.Parse()

	svc := serve.New(serve.Config{
		Workers:        *workers,
		QueueCap:       *queueCap,
		SolverWorkers:  *solverWorkers,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		CheckpointDir:  *ckptDir,
		Cache: serve.CacheConfig{
			PairCapacity:      *pairCache,
			DatasetCapacity:   *datasetCache,
			ConverterCapacity: *convCache,
		},
	})

	if *ckptDir != "" {
		jobs, err := svc.Recover()
		if err != nil {
			log.Fatalf("recover: %v", err)
		}
		if n := len(jobs); n > 0 {
			log.Printf("recovered %d checkpointed job(s) from %s", n, *ckptDir)
		}
	}

	server := &http.Server{Addr: *addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- server.ListenAndServe() }()
	log.Printf("listening on %s (workers %d, queue %d)", *addr, *workers, *queueCap)

	select {
	case err := <-errc:
		log.Fatalf("listen: %v", err)
	case <-ctx.Done():
	}

	log.Printf("draining (grace %s)", *drainTimeout)
	grace, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop taking connections first, then drain the job queue.
	if err := server.Shutdown(grace); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := svc.Shutdown(grace); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("drain: %v", err)
	}
	log.Printf("drained")
}
