// Command rsu-bench regenerates the paper's tables and figures. Each
// experiment prints the same rows or series the paper reports; figure
// experiments additionally write PGM images when -out is set.
//
// Usage:
//
//	rsu-bench -list
//	rsu-bench -run fig5a
//	rsu-bench -run all -out results/ | tee results/report.txt
//	rsu-bench -run fig8 -iterscale 0.25   # quick pass
//	rsu-bench -perf BENCH_1.json          # before/after performance report
//	rsu-bench -perf-check BENCH_1.json    # regression gate vs the baseline
//	rsu-bench -shard-sweep BENCH_3.json   # tile-sharding sweep on an out-of-cache grid
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"rsu/internal/benchkit"
	"rsu/internal/experiments"
)

// startProfiles activates the optional pprof outputs, mirroring
// internal/runopt's wiring: the CPU profile covers the whole invocation and
// the heap profile is written at exit (after a GC, so it shows retained
// memory rather than garbage). The returned stop function flushes both and
// must run before the process exits — which is why main defers it inside
// realMain instead of calling os.Exit directly.
func startProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			_ = cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
			}
			_ = f.Close()
		}
	}, nil
}

// runPerf executes the before/after performance suite and writes the
// machine-readable report. The suite compares the seed implementation
// (serial solver, per-call energy evaluation, legacy sampling kernels)
// against the current defaults; the full-app pair runs the parallel solver,
// so GOMAXPROCS is raised to at least 4 to exercise it.
func runPerf(path string, workers int) error {
	// Fail on an unwritable path before spending a minute on the suite
	// (O_CREATE without O_TRUNC leaves any existing report intact).
	probe, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	_ = probe.Close()
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
	rep := benchkit.Run(workers)
	fmt.Print(rep.String())
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// runShardSweep executes the tile-sharding sweep (benchkit.ShardSweep) and
// writes the machine-readable report — the BENCH_3.json series that tracks
// the sharded solver against the monolithic baseline on a grid 16x the
// micro-suite's. The sharded arms run one goroutine per tile, so GOMAXPROCS
// is raised to at least 4 for parity with the perf suite.
func runShardSweep(path string, workers int) error {
	probe, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	_ = probe.Close()
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
	rep := benchkit.ShardSweep(workers)
	fmt.Print(rep.String())
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// runPerfCheck re-runs the micro-benchmark suite and gates it against the
// baseline report: the current speedups must stay within the tolerance band
// of the baseline's (see benchkit.Compare for why speedups, not raw ns/op,
// transfer across machines). A non-nil error means the gate tripped or the
// inputs were unusable; the gate report is written to reportPath when set,
// regardless of the verdict, so CI can upload it as an artifact either way.
func runPerfCheck(baselinePath, reportPath string, tolerance, injectSlowdown float64, workers int) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var baseline benchkit.Report
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
	current := benchkit.Run(workers)
	if injectSlowdown > 1 {
		fmt.Printf("self-test: injecting a %.2gx slowdown into the current report\n", injectSlowdown)
		current = current.WithInjectedSlowdown(injectSlowdown)
	}
	gate, err := benchkit.Compare(baseline, current, benchkit.MicroSet(), tolerance)
	if err != nil {
		return err
	}
	fmt.Print(gate.String())
	if reportPath != "" {
		out, err := json.MarshalIndent(gate, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(reportPath, append(out, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", reportPath)
	}
	if gate.Regressed {
		return fmt.Errorf("performance regression against %s (tolerance %.0f%%)", baselinePath, gate.Tolerance*100)
	}
	return nil
}

func main() {
	os.Exit(realMain())
}

// realMain carries the exit code back to main so deferred cleanup — the
// pprof flush in particular — runs before the process exits.
func realMain() int {
	var (
		run        = flag.String("run", "", "comma-separated experiment ids, or 'all'")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		seed       = flag.Uint64("seed", 1, "master random seed")
		scale      = flag.Int("scale", 1, "synthetic dataset scale factor")
		iterScale  = flag.Float64("iterscale", 1, "multiplier on annealing iterations (use <1 for a quick pass)")
		out        = flag.String("out", "", "directory for PGM outputs of figure experiments")
		perf       = flag.String("perf", "", "run the before/after performance suite and write the JSON report to this path")
		perfCheck  = flag.String("perf-check", "", "re-run the micro suite and gate it against this baseline BENCH_*.json (exit 1 on regression)")
		perfRep    = flag.String("perf-report", "", "with -perf-check: write the gate report JSON to this path")
		perfTol    = flag.Float64("perf-tolerance", 0, "with -perf-check: relative speedup tolerance (0 = default 15%)")
		perfInj    = flag.Float64("perf-inject-slowdown", 1, "with -perf-check: self-test knob slowing the current after-side by this factor")
		shardSweep = flag.String("shard-sweep", "", "run the tile-sharding sweep and write the JSON report to this path")
		workers    = flag.Int("workers", 0, "design-point/solver workers: 0 = GOMAXPROCS, 1 = serial")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer stopProfiles()

	if *perfCheck != "" {
		if err := runPerfCheck(*perfCheck, *perfRep, *perfTol, *perfInj, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "perf check failed: %v\n", err)
			return 1
		}
		return 0
	}

	if *perf != "" {
		if err := runPerf(*perf, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "perf suite failed: %v\n", err)
			return 1
		}
		return 0
	}

	if *shardSweep != "" {
		if err := runShardSweep(*shardSweep, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "shard sweep failed: %v\n", err)
			return 1
		}
		return 0
	}

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, r := range experiments.Registry() {
			fmt.Printf("  %-16s %s\n", r.ID, r.Title)
		}
		if *run == "" && !*list {
			fmt.Println("\nselect with -run <id>[,<id>...] or -run all")
		}
		return 0
	}

	opts := experiments.Options{
		Seed:      *seed,
		Scale:     *scale,
		IterScale: *iterScale,
		OutDir:    *out,
		Workers:   *workers,
	}

	var ids []string
	if *run == "all" {
		for _, r := range experiments.Registry() {
			ids = append(ids, r.ID)
		}
	} else {
		for _, id := range strings.Split(*run, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	failed := false
	for _, id := range ids {
		r, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			failed = true
			continue
		}
		fmt.Printf("== %s: %s\n", r.ID, r.Title)
		start := time.Now()
		res, err := r.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.ID, err)
			failed = true
			continue
		}
		fmt.Println(res.String())
		fmt.Printf("-- %s done in %.1fs\n\n", r.ID, time.Since(start).Seconds())
	}
	if failed {
		return 1
	}
	return 0
}
