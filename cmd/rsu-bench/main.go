// Command rsu-bench regenerates the paper's tables and figures. Each
// experiment prints the same rows or series the paper reports; figure
// experiments additionally write PGM images when -out is set.
//
// Usage:
//
//	rsu-bench -list
//	rsu-bench -run fig5a
//	rsu-bench -run all -out results/ | tee results/report.txt
//	rsu-bench -run fig8 -iterscale 0.25   # quick pass
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rsu/internal/experiments"
)

func main() {
	var (
		run       = flag.String("run", "", "comma-separated experiment ids, or 'all'")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		seed      = flag.Uint64("seed", 1, "master random seed")
		scale     = flag.Int("scale", 1, "synthetic dataset scale factor")
		iterScale = flag.Float64("iterscale", 1, "multiplier on annealing iterations (use <1 for a quick pass)")
		out       = flag.String("out", "", "directory for PGM outputs of figure experiments")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, r := range experiments.Registry() {
			fmt.Printf("  %-16s %s\n", r.ID, r.Title)
		}
		if *run == "" && !*list {
			fmt.Println("\nselect with -run <id>[,<id>...] or -run all")
		}
		return
	}

	opts := experiments.Options{
		Seed:      *seed,
		Scale:     *scale,
		IterScale: *iterScale,
		OutDir:    *out,
	}

	var ids []string
	if *run == "all" {
		for _, r := range experiments.Registry() {
			ids = append(ids, r.ID)
		}
	} else {
		for _, id := range strings.Split(*run, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	failed := false
	for _, id := range ids {
		r, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			failed = true
			continue
		}
		fmt.Printf("== %s: %s\n", r.ID, r.Title)
		start := time.Now()
		res, err := r.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.ID, err)
			failed = true
			continue
		}
		fmt.Println(res.String())
		fmt.Printf("-- %s done in %.1fs\n\n", r.ID, time.Since(start).Seconds())
	}
	if failed {
		os.Exit(1)
	}
}
