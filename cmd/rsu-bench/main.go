// Command rsu-bench regenerates the paper's tables and figures. Each
// experiment prints the same rows or series the paper reports; figure
// experiments additionally write PGM images when -out is set.
//
// Usage:
//
//	rsu-bench -list
//	rsu-bench -run fig5a
//	rsu-bench -run all -out results/ | tee results/report.txt
//	rsu-bench -run fig8 -iterscale 0.25   # quick pass
//	rsu-bench -perf BENCH_1.json          # before/after performance report
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"rsu/internal/benchkit"
	"rsu/internal/experiments"
)

// runPerf executes the before/after performance suite and writes the
// machine-readable report. The suite compares the seed implementation
// (serial solver, per-call energy evaluation, legacy sampling kernels)
// against the current defaults; the full-app pair runs the parallel solver,
// so GOMAXPROCS is raised to at least 4 to exercise it.
func runPerf(path string, workers int) error {
	// Fail on an unwritable path before spending a minute on the suite
	// (O_CREATE without O_TRUNC leaves any existing report intact).
	probe, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	probe.Close()
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
	rep := benchkit.Run(workers)
	fmt.Print(rep.String())
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func main() {
	var (
		run       = flag.String("run", "", "comma-separated experiment ids, or 'all'")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		seed      = flag.Uint64("seed", 1, "master random seed")
		scale     = flag.Int("scale", 1, "synthetic dataset scale factor")
		iterScale = flag.Float64("iterscale", 1, "multiplier on annealing iterations (use <1 for a quick pass)")
		out       = flag.String("out", "", "directory for PGM outputs of figure experiments")
		perf      = flag.String("perf", "", "run the before/after performance suite and write the JSON report to this path")
		workers   = flag.Int("workers", 0, "design-point/solver workers: 0 = GOMAXPROCS, 1 = serial")
	)
	flag.Parse()

	if *perf != "" {
		if err := runPerf(*perf, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "perf suite failed: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, r := range experiments.Registry() {
			fmt.Printf("  %-16s %s\n", r.ID, r.Title)
		}
		if *run == "" && !*list {
			fmt.Println("\nselect with -run <id>[,<id>...] or -run all")
		}
		return
	}

	opts := experiments.Options{
		Seed:      *seed,
		Scale:     *scale,
		IterScale: *iterScale,
		OutDir:    *out,
		Workers:   *workers,
	}

	var ids []string
	if *run == "all" {
		for _, r := range experiments.Registry() {
			ids = append(ids, r.ID)
		}
	} else {
		for _, id := range strings.Split(*run, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	failed := false
	for _, id := range ids {
		r, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			failed = true
			continue
		}
		fmt.Printf("== %s: %s\n", r.ID, r.Title)
		start := time.Now()
		res, err := r.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.ID, err)
			failed = true
			continue
		}
		fmt.Println(res.String())
		fmt.Printf("-- %s done in %.1fs\n\n", r.ID, time.Since(start).Seconds())
	}
	if failed {
		os.Exit(1)
	}
}
