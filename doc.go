// Package rsu is a from-scratch Go reproduction of "Architecting a
// Stochastic Computing Unit with Molecular Optical Devices" (ISCA 2018):
// the RSU-G molecular-optical Gibbs sampling unit, its precision/quality
// design-space study, and every substrate the evaluation depends on.
//
// The root package only anchors the repository-level benchmarks in
// bench_test.go; the library lives under internal/ (see DESIGN.md for the
// system inventory) and the runnable entry points under cmd/ and examples/.
package rsu
