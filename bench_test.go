package rsu

import (
	"testing"

	"rsu/internal/apps/stereo"
	"rsu/internal/core"
	"rsu/internal/experiments"
	"rsu/internal/img"
	"rsu/internal/mrf"
	"rsu/internal/perf"
	"rsu/internal/phase"
	"rsu/internal/ret"
	"rsu/internal/rng"
	"rsu/internal/rsim"
	"rsu/internal/synth"
	"rsu/internal/uq"
)

// The experiment benchmarks run each paper table/figure driver end to end
// on reduced annealing schedules (IterScale) so the whole suite finishes in
// minutes; cmd/rsu-bench regenerates the full-fidelity numbers.

func benchOpts(iterScale float64) experiments.Options {
	return experiments.Options{Seed: 1, Scale: 1, IterScale: iterScale}
}

func runExperiment(b *testing.B, id string, iterScale float64) {
	b.Helper()
	r, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(benchOpts(iterScale)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3(b *testing.B)       { runExperiment(b, "fig3", 0.1) }
func BenchmarkFig4(b *testing.B)       { runExperiment(b, "fig4", 0.1) }
func BenchmarkEnergyBits(b *testing.B) { runExperiment(b, "energybits", 0.05) }
func BenchmarkFig5a(b *testing.B)      { runExperiment(b, "fig5a", 0.05) }
func BenchmarkFig5b(b *testing.B)      { runExperiment(b, "fig5b", 0.1) }
func BenchmarkFig6(b *testing.B)       { runExperiment(b, "fig6", 0.1) }
func BenchmarkFig7(b *testing.B)       { runExperiment(b, "fig7", 0.05) }
func BenchmarkFig8(b *testing.B)       { runExperiment(b, "fig8", 0.05) }
func BenchmarkFig9a(b *testing.B)      { runExperiment(b, "fig9a", 0.1) }
func BenchmarkFig9b(b *testing.B)      { runExperiment(b, "fig9b", 0.1) }
func BenchmarkFig9c(b *testing.B)      { runExperiment(b, "fig9c", 0.1) }
func BenchmarkFig9d(b *testing.B)      { runExperiment(b, "fig9d", 0.2) }
func BenchmarkTable1(b *testing.B)     { runExperiment(b, "table1", 0.2) }
func BenchmarkTable2(b *testing.B)     { runExperiment(b, "table2", 1) }
func BenchmarkTable3(b *testing.B)     { runExperiment(b, "table3", 1) }
func BenchmarkTable4(b *testing.B)     { runExperiment(b, "table4", 0.1) }

func BenchmarkAccelerator(b *testing.B) { runExperiment(b, "accelerator", 0.1) }

func BenchmarkAblateTieBreak(b *testing.B)  { runExperiment(b, "ablate-tiebreak", 0.05) }
func BenchmarkAblateConverter(b *testing.B) { runExperiment(b, "ablate-converter", 0.1) }
func BenchmarkAblatePipeline(b *testing.B)  { runExperiment(b, "ablate-pipeline", 1) }
func BenchmarkAblateDevice(b *testing.B)    { runExperiment(b, "ablate-device", 0.05) }

func BenchmarkExtBarker(b *testing.B)    { runExperiment(b, "ext-barker", 0.02) }
func BenchmarkExtPhaseType(b *testing.B) { runExperiment(b, "ext-phasetype", 0.1) }
func BenchmarkExtPyramid(b *testing.B)   { runExperiment(b, "ext-pyramid", 0.1) }
func BenchmarkExtBleaching(b *testing.B) { runExperiment(b, "ext-bleaching", 0.3) }

// --- microbenchmarks of the sampler hot paths ---

func benchUnitSample(b *testing.B, cfg core.Config, labels int, legacy bool) {
	b.Helper()
	u := core.MustUnit(cfg, rng.NewXoshiro256(1), true)
	u.SetLegacyKernels(legacy)
	u.SetTemperature(20)
	energies := make([]float64, labels)
	for i := range energies {
		energies[i] = float64(i * 200 / labels)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Sample(energies, 0)
	}
}

func BenchmarkUnitSampleNew8(b *testing.B)   { benchUnitSample(b, core.NewRSUG(), 8, false) }
func BenchmarkUnitSampleNew56(b *testing.B)  { benchUnitSample(b, core.NewRSUG(), 56, false) }
func BenchmarkUnitSamplePrev56(b *testing.B) { benchUnitSample(b, core.PrevRSUG(), 56, false) }

// The Legacy variants run the original reference kernels (per-label -log(u)
// exponential draws, float energy round-trip); compare against the defaults
// above to see the fast-kernel gain.
func BenchmarkUnitSampleLegacyNew8(b *testing.B)   { benchUnitSample(b, core.NewRSUG(), 8, true) }
func BenchmarkUnitSampleLegacyNew56(b *testing.B)  { benchUnitSample(b, core.NewRSUG(), 56, true) }
func BenchmarkUnitSampleLegacyPrev56(b *testing.B) { benchUnitSample(b, core.PrevRSUG(), 56, true) }

// benchLabelEnergies times the per-pixel energy stage on a stereo problem,
// either through the precomputed pairwise LUT (tables=true, the solver
// default) or the direct per-call evaluation it replaced.
func benchLabelEnergies(b *testing.B, tables bool) {
	b.Helper()
	prob := stereo.BuildProblem(synth.Poster(1), stereo.DefaultParams())
	tab := prob.BuildTables()
	lab := img.NewLabels(prob.W, prob.H)
	for i := range lab.L {
		lab.L[i] = i % prob.Labels
	}
	dst := make([]float64, prob.Labels)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, y := i%prob.W, (i/prob.W)%prob.H
		if tables {
			tab.LabelEnergies(dst, lab, x, y)
		} else {
			prob.LabelEnergies(dst, tab.Singles, lab, x, y)
		}
	}
}

func BenchmarkLabelEnergiesTables(b *testing.B) { benchLabelEnergies(b, true) }
func BenchmarkLabelEnergiesDirect(b *testing.B) { benchLabelEnergies(b, false) }

// BenchmarkLabelEnergiesRow times the fused row gather the serial sweep
// uses: one op fills a whole W×Labels block (compare against W iterations
// of BenchmarkLabelEnergiesTables).
func BenchmarkLabelEnergiesRow(b *testing.B) {
	prob := stereo.BuildProblem(synth.Poster(1), stereo.DefaultParams())
	tab := prob.BuildTables()
	lab := img.NewLabels(prob.W, prob.H)
	for i := range lab.L {
		lab.L[i] = i % prob.Labels
	}
	block := make([]float64, prob.W*prob.Labels)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.LabelEnergiesRow(block, lab, i%prob.H)
	}
}

// BenchmarkSampleBatch times the fused batched draw: one op draws a whole
// 96-pixel same-color segment through Unit.SampleBatch.
func BenchmarkSampleBatch(b *testing.B) {
	const seg, labels = 96, 8
	u := core.MustUnit(core.NewRSUG(), rng.NewXoshiro256(1), true)
	u.SetTemperature(20)
	block := make([]float64, seg*labels)
	for i := range block {
		block[i] = float64((i % labels) * 200 / labels)
	}
	currents := make([]int, seg)
	out := make([]int, seg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := u.SampleBatch(block, labels, currents, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFlipDelta times the incremental-energy building block the
// fused sweeps charge per accepted flip.
func BenchmarkFlipDelta(b *testing.B) {
	prob := stereo.BuildProblem(synth.Poster(1), stereo.DefaultParams())
	tab := prob.BuildTables()
	lab := img.NewLabels(prob.W, prob.H)
	for i := range lab.L {
		lab.L[i] = i % prob.Labels
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		idx := (i * 37) % (prob.W * prob.H)
		x, y := idx%prob.W, idx/prob.W
		cur := lab.At(x, y)
		sink += tab.FlipDelta(lab, x, y, cur, (cur+1)%prob.Labels)
	}
	_ = sink
}

func BenchmarkSoftwareSample56(b *testing.B) {
	s := core.NewSoftwareSampler(rng.NewXoshiro256(1))
	s.SetTemperature(20)
	energies := make([]float64, 56)
	for i := range energies {
		energies[i] = float64(i * 4)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(energies, 0)
	}
}

func BenchmarkMachineSample8(b *testing.B) {
	m, err := rsim.NewMachine(core.NewRSUG(), ret.SPAD{}, rng.NewXoshiro256(1))
	if err != nil {
		b.Fatal(err)
	}
	m.SetTemperature(20)
	energies := []float64{0, 25, 50, 75, 100, 125, 150, 175}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Sample(energies, 0)
	}
}

func BenchmarkBarkerSample56(b *testing.B) {
	s, err := core.NewBarkerSampler(core.NewRSUG(), rng.NewXoshiro256(1))
	if err != nil {
		b.Fatal(err)
	}
	s.SetTemperature(20)
	energies := make([]float64, 56)
	for i := range energies {
		energies[i] = float64(i * 4)
	}
	state := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		state = core.MustSample(s, energies, state)
	}
}

func BenchmarkPhaseCascade8(b *testing.B) {
	codes := []int{4, 4, 4, 4, 4, 4, 4, 4}
	s, err := phase.NewRETSampler(core.NewRSUG(), codes, rng.NewXoshiro256(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample()
	}
}

func BenchmarkLUTRebuild(b *testing.B) {
	b.ReportAllocs()
	cfg := core.NewRSUG()
	for i := 0; i < b.N; i++ {
		core.NewLUTConverter(cfg, 1+float64(i%50))
	}
}

func BenchmarkBoundaryRebuild(b *testing.B) {
	b.ReportAllocs()
	cfg := core.NewRSUG()
	for i := 0; i < b.N; i++ {
		core.NewBoundaryConverter(cfg, 1+float64(i%50))
	}
}

func BenchmarkGibbsSweepStereo(b *testing.B) {
	pair := synth.Poster(1)
	p := stereo.DefaultParams()
	p.Schedule = mrf.Schedule{T0: 32, Alpha: 0.99, Iterations: 1}
	u := core.MustUnit(core.NewRSUG(), rng.NewXoshiro256(1), true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stereo.Solve(pair, u, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGibbsSweepStereoParallel is the full-app solve on the
// checkerboard-parallel path: per-worker sampler streams, 4 workers.
func BenchmarkGibbsSweepStereoParallel(b *testing.B) {
	pair := synth.Poster(1)
	p := stereo.DefaultParams()
	p.Schedule = mrf.Schedule{T0: 32, Alpha: 0.99, Iterations: 1}
	p.Workers = 4
	p.SamplerFactory = core.StreamFactory(1, func(src rng.Source) core.LabelSampler {
		return core.MustUnit(core.NewRSUG(), src, true)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stereo.Solve(pair, nil, p); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSolveWithCollector measures the uq collection overhead on a full
// stereo sweep at the mrf.Solve level: the accumulator is built once outside
// the loop (its allocation is setup, not per-solve cost), so the with/without
// delta is exactly the per-sweep histogram pass. Compare the two benchmarks
// to read off the Collector hook's cost; with collect=false the hook is a
// nil check and the numbers must match the plain solve.
func benchSolveWithCollector(b *testing.B, collect bool) {
	b.Helper()
	prob := stereo.BuildProblem(synth.Poster(1), stereo.DefaultParams())
	sched := mrf.Schedule{T0: 32, Alpha: 0.99, Iterations: 1}
	u := core.MustUnit(core.NewRSUG(), rng.NewXoshiro256(1), true)
	var opts mrf.SolveOptions
	if collect {
		acc, err := uq.NewAccumulator(prob.W, prob.H, prob.Labels, uq.Options{BurnIn: 0, Thin: 1})
		if err != nil {
			b.Fatal(err)
		}
		opts.Collector = acc
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mrf.Solve(prob, u, sched, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveWithCollector(b *testing.B)    { benchSolveWithCollector(b, true) }
func BenchmarkSolveWithoutCollector(b *testing.B) { benchSolveWithCollector(b, false) }

func BenchmarkPerfModel(b *testing.B) {
	b.ReportAllocs()
	m := perf.DefaultModel()
	for i := 0; i < b.N; i++ {
		m.TableII()
	}
}

func BenchmarkXoshiro(b *testing.B) {
	b.ReportAllocs()
	src := rng.NewXoshiro256(1)
	for i := 0; i < b.N; i++ {
		src.Uint64()
	}
}

func BenchmarkMT19937(b *testing.B) {
	b.ReportAllocs()
	src := rng.NewMT19937(1)
	for i := 0; i < b.N; i++ {
		src.Uint32()
	}
}

func BenchmarkLFSR19Bit(b *testing.B) {
	b.ReportAllocs()
	src := rng.NewLFSR19(1)
	for i := 0; i < b.N; i++ {
		src.NextBit()
	}
}

func BenchmarkExponentialDraw(b *testing.B) {
	b.ReportAllocs()
	src := rng.NewXoshiro256(1)
	for i := 0; i < b.N; i++ {
		rng.Exponential(src, 4)
	}
}

func BenchmarkExtForster(b *testing.B) { runExperiment(b, "ext-forster", 0.2) }
func BenchmarkExtMixing(b *testing.B)  { runExperiment(b, "ext-mixing", 0.2) }

func BenchmarkExtPareto(b *testing.B) { runExperiment(b, "ext-pareto", 0.05) }

func BenchmarkExtRNGBattery(b *testing.B) { runExperiment(b, "ext-rng", 0.25) }

func BenchmarkExtIsing(b *testing.B) { runExperiment(b, "ext-ising", 0.15) }
