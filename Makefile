GO ?= go

.PHONY: all build test vet race check bench perf

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the whole tree; exercises the checkerboard-parallel
# solver and the experiment worker pool under -race.
race:
	$(GO) test -race ./...

check: build vet test race

bench:
	$(GO) test -bench=. -benchmem .

# Before/after performance report (see DESIGN.md §7 for the schema).
perf:
	$(GO) run ./cmd/rsu-bench -perf BENCH_1.json
