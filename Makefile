GO ?= go

# Fuzz budget per target; fuzz-smoke overrides it for CI (see below).
FUZZTIME ?= 30s

# Coverage floor for the uncertainty-quantification estimators (DESIGN.md §12).
UQ_COVER_MIN ?= 85

.PHONY: all build test vet race race-runtime verify shard-verify fault-sweep checkpoint-smoke fuzz fuzz-smoke check cover bench bench-once perf perf-check shard-sweep profile

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the whole tree; exercises the checkerboard-parallel
# solver and the experiment worker pool under -race.
race:
	$(GO) test -race ./...

# Focused race pass over the solver runtime (persistent worker pool,
# cancellation, panic-to-error, run log), repeated to shake out
# scheduling-dependent interleavings (DESIGN.md §9).
race-runtime:
	$(GO) test -race -count=3 -run 'TestSolve|TestRunLog|TestOnSweep|TestSchedule' ./internal/mrf ./internal/runopt

# Statistical conformance battery + golden-trace regression (DESIGN.md §8).
# Fails on any distribution non-conformance or golden drift.
verify:
	$(GO) run ./cmd/rsu-verify

# Sharding-equivalence gates only (DESIGN.md §15): 1x1-tiling byte-identity
# against the serial goldens, the sharded-vs-monolithic chi-square battery,
# and the sharded checkpoint bit-exact resume.
shard-verify:
	$(GO) run ./cmd/rsu-verify -only-shards

# Device-fault injection smoke (DESIGN.md §13): the compressed degradation
# sweep plus the fault model's determinism suite, both under -race, so CI
# proves the injection path is data-race-free and the one-command artifact
# contract (fault_sweep.json + PGMs) holds.
fault-sweep:
	$(GO) test -race -count=1 -run TestFaultSweepArtifacts ./internal/experiments
	$(GO) test -race -count=1 ./internal/fault
	$(GO) test -race -count=1 -run 'TestFault|TestSPAD' ./internal/mrf ./internal/ret

# Checkpoint kill/resume smoke (DESIGN.md §14): SIGKILL a race-built
# rsu-stereo mid-solve after its first snapshot, resume from the snapshot,
# and require the resumed disparity map to be byte-identical to an
# uninterrupted run — the bit-exact resume guarantee under the harshest
# interruption the OS offers.
checkpoint-smoke:
	./scripts/checkpoint-smoke.sh

# Whole-tree coverage profile plus a hard floor on internal/uq: the UQ
# estimators feed confidence numbers to users, so untested estimator math is
# a gate failure, not a warning. Writes coverage.out (uploaded by CI).
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	$(GO) tool cover -func=coverage.out > coverage.txt
	@$(GO) test -count=1 -coverprofile=coverage-uq.out -coverpkg=rsu/internal/uq ./internal/uq > /dev/null
	@pct=$$($(GO) tool cover -func=coverage-uq.out | awk '/^total:/ {gsub(/%/, "", $$3); print $$3}'); \
	echo "internal/uq coverage: $$pct% (floor $(UQ_COVER_MIN)%)"; \
	awk -v p="$$pct" -v min="$(UQ_COVER_MIN)" 'BEGIN { exit (p+0 >= min+0 ? 0 : 1) }' || \
	{ echo "internal/uq coverage $$pct% is below the $(UQ_COVER_MIN)% floor"; exit 1; }

# Native Go fuzzing of the sampling pipeline, the lambda converter, the
# checkpoint snapshot decoder (truncation, bit flips, version skew), and the
# shard-plan geometry (exclusive full-grid tile coverage under arbitrary
# dimensions). FUZZTIME sets the budget per target (default 30s above).
fuzz:
	$(GO) test ./internal/conformance -run '^$$' -fuzz FuzzUnitSample -fuzztime $(FUZZTIME)
	$(GO) test ./internal/conformance -run '^$$' -fuzz FuzzLambdaCode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/checkpoint -run '^$$' -fuzz FuzzDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/shard -run '^$$' -fuzz FuzzShardGeometry -fuzztime $(FUZZTIME)

# Short-budget fuzz pass for CI — the same recipe, smaller budget.
fuzz-smoke:
	$(MAKE) fuzz FUZZTIME=10s

check: build vet test race verify

bench:
	$(GO) test -bench=. -benchmem .

# Single-iteration pass over every micro-benchmark — the CI smoke that keeps
# bench code compiling and running without paying for real measurements.
bench-once:
	$(GO) test -run '^$$' -bench=. -benchtime=1x -benchmem .

# Before/after performance report (see DESIGN.md §7 for the schema).
perf:
	$(GO) run ./cmd/rsu-bench -perf BENCH_2.json

# Perf-regression gate: re-run the micro suite and compare speedups against
# the checked-in baseline with a 15% tolerance (DESIGN.md §10). Writes the
# gate report CI uploads as an artifact. PERFCHECK_FLAGS lets the CI
# self-test inject a slowdown (-perf-inject-slowdown 2) to prove the gate trips.
perf-check:
	$(GO) run ./cmd/rsu-bench -perf-check BENCH_2.json -perf-report perf-check-report.json $(PERFCHECK_FLAGS)

# Tile-sharding sweep on an out-of-cache grid (16x the micro-suite's stereo
# scene): monolithic checkerboard baseline vs the sharded solver per
# geometry. Writes the BENCH_3.json series (DESIGN.md §15).
shard-sweep:
	$(GO) run ./cmd/rsu-bench -shard-sweep BENCH_3.json

# CPU + heap profiles of the performance suite (DESIGN.md §11); inspect with
# `go tool pprof cpu.pprof`.
profile:
	$(GO) run ./cmd/rsu-bench -perf /tmp/bench-profile.json -cpuprofile cpu.pprof -memprofile mem.pprof
