GO ?= go

.PHONY: all build test vet race race-runtime verify fuzz fuzz-smoke check bench perf

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the whole tree; exercises the checkerboard-parallel
# solver and the experiment worker pool under -race.
race:
	$(GO) test -race ./...

# Focused race pass over the solver runtime (persistent worker pool,
# cancellation, panic-to-error, run log), repeated to shake out
# scheduling-dependent interleavings (DESIGN.md §9).
race-runtime:
	$(GO) test -race -count=3 -run 'TestSolve|TestRunLog|TestOnSweep|TestSchedule' ./internal/mrf ./internal/runopt

# Statistical conformance battery + golden-trace regression (DESIGN.md §8).
# Fails on any distribution non-conformance or golden drift.
verify:
	$(GO) run ./cmd/rsu-verify

# Native Go fuzzing of the sampling pipeline and the lambda converter.
fuzz:
	$(GO) test ./internal/conformance -run '^$$' -fuzz FuzzUnitSample -fuzztime 30s
	$(GO) test ./internal/conformance -run '^$$' -fuzz FuzzLambdaCode -fuzztime 30s

# Short-budget fuzz pass for CI.
fuzz-smoke:
	$(GO) test ./internal/conformance -run '^$$' -fuzz FuzzUnitSample -fuzztime 10s
	$(GO) test ./internal/conformance -run '^$$' -fuzz FuzzLambdaCode -fuzztime 10s

check: build vet test race verify

bench:
	$(GO) test -bench=. -benchmem .

# Before/after performance report (see DESIGN.md §7 for the schema).
perf:
	$(GO) run ./cmd/rsu-bench -perf BENCH_1.json
