GO ?= go

# Fuzz budget per target; fuzz-smoke overrides it for CI (see below).
FUZZTIME ?= 30s

.PHONY: all build test vet race race-runtime verify fuzz fuzz-smoke check bench bench-once perf perf-check profile

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector pass over the whole tree; exercises the checkerboard-parallel
# solver and the experiment worker pool under -race.
race:
	$(GO) test -race ./...

# Focused race pass over the solver runtime (persistent worker pool,
# cancellation, panic-to-error, run log), repeated to shake out
# scheduling-dependent interleavings (DESIGN.md §9).
race-runtime:
	$(GO) test -race -count=3 -run 'TestSolve|TestRunLog|TestOnSweep|TestSchedule' ./internal/mrf ./internal/runopt

# Statistical conformance battery + golden-trace regression (DESIGN.md §8).
# Fails on any distribution non-conformance or golden drift.
verify:
	$(GO) run ./cmd/rsu-verify

# Native Go fuzzing of the sampling pipeline and the lambda converter.
# FUZZTIME sets the budget per target (default 30s above).
fuzz:
	$(GO) test ./internal/conformance -run '^$$' -fuzz FuzzUnitSample -fuzztime $(FUZZTIME)
	$(GO) test ./internal/conformance -run '^$$' -fuzz FuzzLambdaCode -fuzztime $(FUZZTIME)

# Short-budget fuzz pass for CI — the same recipe, smaller budget.
fuzz-smoke:
	$(MAKE) fuzz FUZZTIME=10s

check: build vet test race verify

bench:
	$(GO) test -bench=. -benchmem .

# Single-iteration pass over every micro-benchmark — the CI smoke that keeps
# bench code compiling and running without paying for real measurements.
bench-once:
	$(GO) test -run '^$$' -bench=. -benchtime=1x -benchmem .

# Before/after performance report (see DESIGN.md §7 for the schema).
perf:
	$(GO) run ./cmd/rsu-bench -perf BENCH_2.json

# Perf-regression gate: re-run the micro suite and compare speedups against
# the checked-in baseline with a 15% tolerance (DESIGN.md §10). Writes the
# gate report CI uploads as an artifact. PERFCHECK_FLAGS lets the CI
# self-test inject a slowdown (-perf-inject-slowdown 2) to prove the gate trips.
perf-check:
	$(GO) run ./cmd/rsu-bench -perf-check BENCH_2.json -perf-report perf-check-report.json $(PERFCHECK_FLAGS)

# CPU + heap profiles of the performance suite (DESIGN.md §11); inspect with
# `go tool pprof cpu.pprof`.
profile:
	$(GO) run ./cmd/rsu-bench -perf /tmp/bench-profile.json -cpuprofile cpu.pprof -memprofile mem.pprof
